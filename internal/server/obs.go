package server

import (
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"github.com/mqgo/metaquery/internal/obs"
)

// This file is the server's observability surface: per-request latency
// histograms keyed by endpoint × database × outcome, structured request
// logging with slow-query span-tree dumps, per-request tracing behind the
// "trace" request field, and the GET /metrics Prometheus text exposition.

// latKey identifies one request-latency series. The label set is bounded:
// endpoints are the three search routes, outcomes the four classes below,
// and db only takes registered database names (unknown names record under
// the empty db), so series cardinality cannot be driven by request spam.
type latKey struct {
	endpoint, db, outcome string
}

// latencies holds the request-duration histograms. The map is
// mutex-guarded (a lookup per request); each histogram is lock-free, so
// recording contends only on series creation and snapshotting.
type latencies struct {
	mu sync.Mutex
	m  map[latKey]*obs.Histogram
}

// rec records one request duration (in nanoseconds) under key.
func (l *latencies) rec(key latKey, d time.Duration) {
	l.mu.Lock()
	h := l.m[key]
	if h == nil {
		if l.m == nil {
			l.m = make(map[latKey]*obs.Histogram)
		}
		h = &obs.Histogram{}
		l.m[key] = h
	}
	l.mu.Unlock()
	h.RecordDuration(d)
}

// snapshot returns the series in deterministic key order.
func (l *latencies) snapshot() ([]latKey, []*obs.Histogram) {
	l.mu.Lock()
	keys := make([]latKey, 0, len(l.m))
	for k := range l.m {
		keys = append(keys, k)
	}
	l.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.endpoint != b.endpoint {
			return a.endpoint < b.endpoint
		}
		if a.db != b.db {
			return a.db < b.db
		}
		return a.outcome < b.outcome
	})
	hs := make([]*obs.Histogram, len(keys))
	l.mu.Lock()
	for i, k := range keys {
		hs[i] = l.m[k]
	}
	l.mu.Unlock()
	return keys, hs
}

// obsWriter wraps the ResponseWriter to capture the response status for
// outcome classification, and carries the request's database label (tagged
// by the handler once the database resolves, so unknown names never mint
// label values).
type obsWriter struct {
	http.ResponseWriter
	status int
	db     string
}

func (w *obsWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *obsWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so NDJSON streaming keeps its
// flush-per-row behavior through the wrapper.
func (w *obsWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// tagDB labels the in-flight request's latency series with the resolved
// database name. Handlers call it only after the registry lookup succeeds.
func tagDB(w http.ResponseWriter, db string) {
	if ow, ok := w.(*obsWriter); ok {
		ow.db = db
	}
}

// outcomeOf classifies a response status for the latency outcome label.
func outcomeOf(status int) string {
	switch {
	case status == http.StatusGatewayTimeout:
		return "deadline"
	case status >= 500:
		return "error"
	case status >= 400:
		return "client_error"
	default:
		return "ok"
	}
}

// observe wraps a search handler with the latency/logging/tracing layer:
// it times the request, classifies the outcome off the captured status,
// records the endpoint × db × outcome histogram, emits one structured log
// line per request, and — when the duration crosses the slow-query
// threshold — dumps the request's span tree at warning level. The
// slow-query tracer rides the request context (obs.WithTracer), the same
// channel the "trace" request field uses, so the engine needs no
// per-request Options change.
func (s *Server) observe(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ow := &obsWriter{ResponseWriter: w}
		var tr *obs.Tracer
		if s.cfg.SlowQuery > 0 && s.cfg.Logger != nil {
			tr = obs.NewTracer()
			r = r.WithContext(obs.WithTracer(r.Context(), tr))
		}
		start := time.Now()
		h(ow, r)
		d := time.Since(start)
		if ow.status == 0 {
			// Nothing was written: a disconnected client's search ended
			// with nobody listening.
			ow.status = http.StatusOK
		}
		outcome := outcomeOf(ow.status)
		s.lat.rec(latKey{endpoint: endpoint, db: ow.db, outcome: outcome}, d)
		if s.cfg.Logger == nil {
			return
		}
		s.cfg.Logger.Info("request",
			"endpoint", endpoint, "db", ow.db, "status", ow.status,
			"outcome", outcome, "dur_ms", float64(d.Microseconds())/1e3)
		if s.cfg.SlowQuery > 0 && d >= s.cfg.SlowQuery {
			s.cfg.Logger.Warn("slow query",
				"endpoint", endpoint, "db", ow.db, "status", ow.status,
				"dur_ms", float64(d.Microseconds())/1e3,
				"threshold_ms", float64(s.cfg.SlowQuery.Microseconds())/1e3,
				"trace", "\n"+obs.RenderTree(tr.Tree()))
		}
	}
}

// requestTracer resolves the tracer for a handler that was asked to return
// a span tree ("trace": true): the context tracer when the slow-query
// layer already installed one, a fresh context-injected tracer otherwise.
// The returned request must be used for the search context so the tracer
// reaches the engine.
func requestTracer(r *http.Request, want bool) (*obs.Tracer, *http.Request) {
	if tr := obs.FromContext(r.Context()); tr != nil {
		return tr, r
	}
	if !want {
		return nil, r
	}
	tr := obs.NewTracer()
	return tr, r.WithContext(obs.WithTracer(r.Context(), tr))
}

// traceOut returns the span forest to attach to a response, nil unless the
// request asked for it.
func traceOut(tr *obs.Tracer, want bool) []*obs.SpanTree {
	if !want || tr == nil {
		return nil
	}
	return tr.Tree()
}

// handleMetrics answers GET /metrics in the Prometheus text exposition
// format (0.0.4), stdlib-rendered: server counters, the in-flight gauge,
// request-duration histograms per endpoint × db × outcome, each database's
// engine histograms (node-join wall time, planner estimate quality), and
// Go runtime health.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	obs.WriteHeader(w, "mq_requests_total", "Admitted search requests by endpoint.", "counter")
	obs.WriteSample(w, "mq_requests_total", obs.Label("endpoint", "query"), float64(s.metrics.queries.Load()))
	obs.WriteSample(w, "mq_requests_total", obs.Label("endpoint", "decide"), float64(s.metrics.decisions.Load()))
	obs.WriteSample(w, "mq_requests_total", obs.Label("endpoint", "stream"), float64(s.metrics.streams.Load()))

	counters := []struct {
		name, help string
		v          uint64
	}{
		{"mq_rejected_total", "Requests rejected with 429 (admission semaphore full).", s.metrics.rejected.Load()},
		{"mq_db_loads_total", "Databases loaded or replaced.", s.metrics.dbLoads.Load()},
		{"mq_db_deltas_total", "Incremental deltas applied.", s.metrics.dbDeltas.Load()},
		{"mq_prep_cache_hits_total", "Prepared-metaquery cache hits.", s.metrics.cacheHits.Load()},
		{"mq_prep_cache_misses_total", "Prepared-metaquery cache misses.", s.metrics.cacheMisses.Load()},
		{"mq_stream_rows_total", "NDJSON answer rows written.", s.metrics.streamRows.Load()},
		{"mq_streams_cut_total", "Streams ended early by disconnect or deadline.", s.metrics.streamsCut.Load()},
		{"mq_deadline_hits_total", "Requests ended by their search deadline.", s.metrics.deadlineHits.Load()},
		{"mq_answers_served_total", "Answers returned by /v1/query.", s.metrics.answersServed.Load()},
	}
	for _, c := range counters {
		obs.WriteHeader(w, c.name, c.help, "counter")
		obs.WriteSample(w, c.name, "", float64(c.v))
	}

	obs.WriteHeader(w, "mq_in_flight", "Currently executing search requests.", "gauge")
	obs.WriteSample(w, "mq_in_flight", "", float64(s.metrics.inFlight.Load()))

	keys, hists := s.lat.snapshot()
	if len(keys) > 0 {
		obs.WriteHeader(w, "mq_request_duration_seconds",
			"Search request latency by endpoint, database and outcome.", "histogram")
		for i, k := range keys {
			labels := obs.Labels(
				obs.Label("endpoint", k.endpoint),
				obs.Label("db", k.db),
				obs.Label("outcome", k.outcome))
			obs.WriteHistogram(w, "mq_request_duration_seconds", labels, hists[i].Snapshot(), 1e9)
		}
	}

	names := s.reg.names()
	obs.WriteHeader(w, "mq_db_tuples", "Tuples per registered database.", "gauge")
	for _, name := range names {
		if d, ok := s.reg.get(name); ok {
			obs.WriteSample(w, "mq_db_tuples", obs.Label("db", name), float64(d.eng.Database().Size()))
		}
	}
	wroteJoin, wroteRatio := false, false
	for _, name := range names {
		d, ok := s.reg.get(name)
		if !ok {
			continue
		}
		m := d.eng.Metrics()
		if m == nil {
			continue
		}
		if !wroteJoin {
			obs.WriteHeader(w, "mq_node_join_duration_seconds",
				"Wall time of executed (cache-miss) decomposition node joins.", "histogram")
			wroteJoin = true
		}
		obs.WriteHistogram(w, "mq_node_join_duration_seconds", obs.Label("db", name), m.NodeJoin.Snapshot(), 1e9)
	}
	for _, name := range names {
		d, ok := s.reg.get(name)
		if !ok {
			continue
		}
		m := d.eng.Metrics()
		if m == nil {
			continue
		}
		if !wroteRatio {
			obs.WriteHeader(w, "mq_node_join_est_actual_ratio",
				"Planner estimate quality per executed node join: actual/estimated output rows (1 = perfect).", "histogram")
			wroteRatio = true
		}
		obs.WriteHistogram(w, "mq_node_join_est_actual_ratio", obs.Label("db", name), m.EstActualRatio.Snapshot(), 1000)
	}

	rt := obs.ReadRuntimeHealth()
	obs.WriteHeader(w, "go_goroutines", "Live goroutines.", "gauge")
	obs.WriteSample(w, "go_goroutines", "", float64(rt.Goroutines))
	obs.WriteHeader(w, "go_heap_inuse_bytes", "Bytes of live heap objects.", "gauge")
	obs.WriteSample(w, "go_heap_inuse_bytes", "", float64(rt.HeapBytes))
	obs.WriteHeader(w, "go_gc_cycles_total", "Completed GC cycles.", "counter")
	obs.WriteSample(w, "go_gc_cycles_total", "", float64(rt.GCCycles))
	obs.WriteHeader(w, "go_gc_pause_seconds_total", "Cumulative GC pause time.", "counter")
	obs.WriteSample(w, "go_gc_pause_seconds_total", "", rt.GCPauseTotalS)
}

// mountPprof registers the net/http/pprof handlers on the server mux.
// Explicit registration (rather than the package's init side effect on
// http.DefaultServeMux) keeps the profiling surface behind Config.
func (s *Server) mountPprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
