package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/relation"
)

// slowScenario builds a database and cyclic type-1 metaquery big enough
// that the full search takes many milliseconds: the deadline and
// disconnect tests need a search that cannot finish instantly.
func slowScenario(t *testing.T) (*relation.Database, *core.Metaquery) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	db := gen.DBConfig{Relations: 3, MinArity: 2, MaxArity: 2, MinTuples: 90, MaxTuples: 90, Domain: 9}.Generate(rng)
	mq, err := gen.MQConfig{BodyPatterns: 3, PatternArity: 2, Cyclic: true}.Generate(rng, db)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	return db, mq
}

func TestMalformedJSONIs400(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.LoadDatabase("fig1", figure1DB())

	for _, path := range []string{"/v1/query", "/v1/decide", "/v1/stream", "/v1/db/x"} {
		for _, body := range []string{"{not json", `"a string"`, `{"db": 7}`, `{"unknown_knob": true}`} {
			resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatalf("POST %s: %v", path, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("POST %s with %q: status %d, want 400", path, body, resp.StatusCode)
			}
		}
	}
}

func TestUnknownDatabaseIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/query", "/v1/stream"} {
		code, body := postJSON(t, ts.URL+path, searchRequest{DB: "nope", Query: "R(X) <- P(X)", Type: 0})
		if code != http.StatusNotFound {
			t.Errorf("%s: status %d (%s), want 404", path, code, body)
		}
	}
	code, body := postJSON(t, ts.URL+"/v1/decide", decideRequest{DB: "nope", Query: "R(X) <- P(X)", Index: "sup"})
	if code != http.StatusNotFound {
		t.Errorf("/v1/decide: status %d (%s), want 404", code, body)
	}
}

func TestInvalidParametersAre400(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.LoadDatabase("fig1", figure1DB())

	cases := []struct {
		path string
		body any
	}{
		{"/v1/query", searchRequest{DB: "fig1", Query: "", Type: 0}},
		{"/v1/query", searchRequest{DB: "fig1", Query: "R(X) <- P(X)", Type: 9}},
		{"/v1/query", searchRequest{DB: "fig1", Query: "not a metaquery"}},
		{"/v1/query", searchRequest{DB: "fig1", Query: "R(X) <- P(X)", MinSup: "bogus"}},
		{"/v1/query", searchRequest{DB: "fig1", Query: "R(X) <- P(X)", Limit: -1}},
		{"/v1/query", searchRequest{DB: "fig1", Query: "R(X) <- P(X)", Workers: -1}},
		{"/v1/stream", searchRequest{DB: "fig1", Query: "R(X) <- P(X)", Workers: -3}},
		{"/v1/decide", decideRequest{DB: "fig1", Query: "R(X) <- P(X)", Index: "nope"}},
		{"/v1/decide", decideRequest{DB: "fig1", Query: "R(X) <- P(X)", Index: "sup", K: "x/y"}},
		{"/v1/decide", decideRequest{DB: "fig1", Query: "R(X) <- P(X)", Index: "sup", Workers: -2}},
		{"/v1/db/x", jsonDatabase{}},
		{"/v1/db/x", jsonDatabase{Dir: "/no/such/dir", Relations: []jsonRelation{{Name: "r", Arity: 1}}}},
		{"/v1/db/x", jsonDatabase{Relations: []jsonRelation{{Name: "r", Arity: 2, Tuples: [][]string{{"one"}}}}}},
	}
	for _, c := range cases {
		code, body := postJSON(t, ts.URL+c.path, c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s %+v: status %d (%s), want 400", c.path, c.body, code, body)
		}
	}
}

func TestQueryDeadlineIs504(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	db, mq := slowScenario(t)
	s.LoadDatabase("slow", db)

	code, body := postJSON(t, ts.URL+"/v1/query", searchRequest{
		DB: "slow", Query: mq.String(), Type: 1, TimeoutMS: 1,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", code, body)
	}
	if st := s.Stats(); st.DeadlineHits != 1 {
		t.Fatalf("deadline metric: %+v", st)
	}
}

// TestStreamDeadlineTruncates exercises a deadline firing mid-stream: the
// NDJSON output is truncated but still ends with a parseable trailer line
// reporting deadline_exceeded and the row count actually delivered.
func TestStreamDeadlineTruncates(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	db, mq := slowScenario(t)
	s.LoadDatabase("slow", db)

	code, body := postJSON(t, ts.URL+"/v1/stream", searchRequest{
		DB: "slow", Query: mq.String(), Type: 1, TimeoutMS: 5,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	rows, trailer := parseNDJSON(t, body)
	if trailer.Status != "deadline_exceeded" {
		t.Fatalf("trailer status %q, want deadline_exceeded (%d rows)", trailer.Status, len(rows))
	}
	if trailer.Answers != len(rows) {
		t.Fatalf("trailer answers %d != %d delivered rows", trailer.Answers, len(rows))
	}
	st := s.Stats()
	if st.StreamsCut != 1 || st.DeadlineHits != 1 {
		t.Fatalf("metrics after cut stream: %+v", st)
	}
}

// TestSaturationSheds429 covers admission control: with zero slots every
// search is shed with 429 + Retry-After; with one slot a holding request
// saturates the server for exactly as long as it runs.
func TestSaturationSheds429(t *testing.T) {
	t.Run("zero-slots", func(t *testing.T) {
		s, ts := newTestServer(t, Config{MaxInFlight: -1})
		s.LoadDatabase("fig1", figure1DB())
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(`{"db":"fig1","query":"R(X) <- P(X)"}`))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "1" {
			t.Fatalf("Retry-After %q, want \"1\"", ra)
		}
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Fatalf("429 body not a JSON error: %v %+v", err, e)
		}
		if st := s.Stats(); st.Rejected != 1 {
			t.Fatalf("rejected metric: %+v", st)
		}
	})

	t.Run("one-slot-held", func(t *testing.T) {
		s, ts := newTestServer(t, Config{MaxInFlight: 1})
		s.LoadDatabase("fig1", figure1DB())
		release := make(chan struct{})
		holding := make(chan struct{})
		var once bool
		s.holdSearch = func() {
			if !once {
				once = true
				close(holding)
				<-release
			}
		}
		firstDone := make(chan int, 1)
		go func() {
			code, _, _ := postJSONErr(ts.URL+"/v1/query", searchRequest{DB: "fig1", Query: "R(X,Y) <- P(X,Y)"})
			firstDone <- code
		}()
		<-holding // the only slot is now held

		code, _ := postJSON(t, ts.URL+"/v1/query", searchRequest{DB: "fig1", Query: "R(X,Y) <- P(X,Y)"})
		if code != http.StatusTooManyRequests {
			t.Fatalf("second request: status %d, want 429", code)
		}
		close(release)
		if code := <-firstDone; code != http.StatusOK {
			t.Fatalf("held request: status %d, want 200", code)
		}
		// The slot is free again: a third request is admitted.
		code, _ = postJSON(t, ts.URL+"/v1/query", searchRequest{DB: "fig1", Query: "R(X,Y) <- P(X,Y)"})
		if code != http.StatusOK {
			t.Fatalf("post-release request: status %d, want 200", code)
		}
	})
}

// TestStreamClientDisconnectCancelsSearch proves a mid-stream client
// disconnect aborts the server-side search: the stream's StreamStats show
// a context.Canceled search that explored strictly less than the full
// space.
func TestStreamClientDisconnectCancelsSearch(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	db, mq := slowScenario(t)
	s.LoadDatabase("slow", db)

	// Ground truth: the full answer count, from the library path.
	prep, err := engine.NewEngine(db).Prepare(mq, engine.Options{Type: core.Type1})
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	full, err := prep.FindRules(context.Background())
	if err != nil {
		t.Fatalf("find: %v", err)
	}
	if len(full) < 10 {
		t.Fatalf("scenario too small to interrupt: %d answers", len(full))
	}

	firstRow := make(chan struct{})
	proceed := make(chan struct{})
	type doneInfo struct {
		st  engine.Stats
		err error
	}
	done := make(chan doneInfo, 1)
	s.streamSent = func(n int) {
		if n == 1 {
			close(firstRow)
			<-proceed
		}
	}
	s.streamDone = func(st *engine.Stats, err error) {
		done <- doneInfo{*st, err}
	}

	blob, _ := json.Marshal(searchRequest{DB: "slow", Query: mq.String(), Type: 1})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/stream", bytes.NewReader(blob))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()

	// Read the first streamed row, then vanish: cancel closes the
	// connection, and only then is the handler allowed to continue.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first row: %v", err)
	}
	<-firstRow
	cancel()
	close(proceed)

	info := <-done
	if !errors.Is(info.err, context.Canceled) {
		t.Fatalf("stream error = %v, want context.Canceled", info.err)
	}
	if info.st.Answers >= len(full) {
		t.Fatalf("search ran to completion despite disconnect: %d answers (full set %d)", info.st.Answers, len(full))
	}
	deadlineOrCut := func() bool {
		return s.Stats().StreamsCut == 1
	}
	for i := 0; i < 100 && !deadlineOrCut(); i++ {
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.StreamsCut != 1 {
		t.Fatalf("streamsCut metric: %+v", st)
	}
}
