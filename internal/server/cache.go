package server

import (
	"container/list"
	"fmt"
	"sync"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
)

// prepKey is the cache identity of a prepared metaquery: the
// variable-renaming-invariant canonical key of the query joined with every
// Options field that participates in preparation. α-equivalent requests
// with the same options map to one key and therefore one Prepared.
func prepKey(mq *core.Metaquery, opt engine.Options) string {
	th := opt.Thresholds
	a := opt.Approx
	return fmt.Sprintf("%s|t%d|s%v:%s|c%v:%s|v%v:%s|l%d|w%d|g%v|a%g:%g:%d:%d",
		mq.CanonicalKey(), opt.Type,
		th.CheckSup, th.Sup, th.CheckCnf, th.Cnf, th.CheckCvr, th.Cvr,
		opt.Limit, opt.Workers, opt.DisableCostPlanner,
		a.Epsilon, a.Delta, a.MaxSamples, a.Seed)
}

// prepCache is a fixed-capacity LRU of Prepared metaqueries, one per
// database. A hit skips validation and hypertree decomposition entirely
// and, because the Prepared carries the cross-execution node-join cache,
// lets repeat queries reuse the joins earlier executions materialized.
// Safe for concurrent use.
type prepCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits, misses, evictions uint64
}

type prepEntry struct {
	key  string
	prep *engine.Prepared
}

func newPrepCache(capacity int) *prepCache {
	if capacity < 1 {
		capacity = 1
	}
	return &prepCache{cap: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached Prepared for key, marking it most recently used.
func (c *prepCache) get(key string) (*engine.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*prepEntry).prep, true
}

// add inserts p under key and returns the canonical cached instance: when
// a concurrent request already inserted one, the earlier winner is kept
// (its node-join cache may already be warm) and returned.
func (c *prepCache) add(key string, p *engine.Prepared) *engine.Prepared {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*prepEntry).prep
	}
	c.byKey[key] = c.ll.PushFront(&prepEntry{key: key, prep: p})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*prepEntry).key)
		c.evictions++
	}
	return p
}

// cacheStats is a point-in-time snapshot of the cache counters.
type cacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func (c *prepCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{Size: c.ll.Len(), Capacity: c.cap, Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}
