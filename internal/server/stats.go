package server

import (
	"fmt"
	"net/http"
	"strings"

	"github.com/mqgo/metaquery/internal/obs"
)

// Stats is a point-in-time snapshot of the server's cumulative counters
// and the per-database registry state: the observability surface behind
// GET /v1/stats (JSON) and GET /debug (text).
type Stats struct {
	InFlight    int64 `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`

	Queries   uint64 `json:"queries"`
	Decisions uint64 `json:"decisions"`
	Streams   uint64 `json:"streams"`
	Rejected  uint64 `json:"rejected"`
	DBLoads   uint64 `json:"db_loads"`
	DBDeltas  uint64 `json:"db_deltas"`

	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	StreamRows    uint64 `json:"stream_rows"`
	StreamsCut    uint64 `json:"streams_cut"`
	DeadlineHits  uint64 `json:"deadline_hits"`
	AnswersServed uint64 `json:"answers_served"`

	// Runtime is the Go runtime health snapshot (goroutines, live heap,
	// GC cycles and cumulative pause time).
	Runtime obs.RuntimeHealth `json:"runtime"`
	// Latency reports request-latency percentiles per endpoint × database
	// × outcome series; LatencyByEndpoint merges each endpoint's series
	// into one overall distribution (the cross-check surface for client-
	// side measurements, e.g. mqbench -serve).
	Latency           []LatencyStats `json:"latency,omitempty"`
	LatencyByEndpoint []LatencyStats `json:"latency_by_endpoint,omitempty"`

	Databases []DBStats `json:"databases"`
}

// LatencyStats reports one latency series' percentiles in milliseconds.
// The histogram buckets are log-spaced, so each percentile is an upper
// bound within 25% of the true order statistic.
type LatencyStats struct {
	Endpoint string  `json:"endpoint"`
	DB       string  `json:"db,omitempty"`
	Outcome  string  `json:"outcome,omitempty"`
	Count    uint64  `json:"count"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// latencyStats folds one histogram into the wire form.
func latencyStats(endpoint, db, outcome string, h *obs.Histogram) LatencyStats {
	return LatencyStats{
		Endpoint: endpoint,
		DB:       db,
		Outcome:  outcome,
		Count:    h.Count(),
		P50MS:    h.QuantileSeconds(0.50) * 1e3,
		P95MS:    h.QuantileSeconds(0.95) * 1e3,
		P99MS:    h.QuantileSeconds(0.99) * 1e3,
	}
}

// DBStats reports one registered database and its prepared-cache counters.
type DBStats struct {
	Name      string     `json:"name"`
	Relations int        `json:"relations"`
	Tuples    int        `json:"tuples"`
	PrepCache cacheStats `json:"prep_cache"`
}

// Stats snapshots the server counters and registry.
func (s *Server) Stats() Stats {
	st := Stats{
		InFlight:      s.metrics.inFlight.Load(),
		MaxInFlight:   s.cfg.MaxInFlight,
		Queries:       s.metrics.queries.Load(),
		Decisions:     s.metrics.decisions.Load(),
		Streams:       s.metrics.streams.Load(),
		Rejected:      s.metrics.rejected.Load(),
		DBLoads:       s.metrics.dbLoads.Load(),
		DBDeltas:      s.metrics.dbDeltas.Load(),
		CacheHits:     s.metrics.cacheHits.Load(),
		CacheMisses:   s.metrics.cacheMisses.Load(),
		StreamRows:    s.metrics.streamRows.Load(),
		StreamsCut:    s.metrics.streamsCut.Load(),
		DeadlineHits:  s.metrics.deadlineHits.Load(),
		AnswersServed: s.metrics.answersServed.Load(),
	}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(total)
	}
	st.Runtime = obs.ReadRuntimeHealth()
	keys, hists := s.lat.snapshot()
	merged := map[string]*obs.Histogram{}
	var endpoints []string
	for i, k := range keys {
		st.Latency = append(st.Latency, latencyStats(k.endpoint, k.db, k.outcome, hists[i]))
		m := merged[k.endpoint]
		if m == nil {
			m = &obs.Histogram{}
			merged[k.endpoint] = m
			endpoints = append(endpoints, k.endpoint)
		}
		m.Merge(hists[i])
	}
	for _, ep := range endpoints {
		st.LatencyByEndpoint = append(st.LatencyByEndpoint, latencyStats(ep, "", "", merged[ep]))
	}
	for _, name := range s.reg.names() {
		d, ok := s.reg.get(name)
		if !ok {
			continue
		}
		db := d.eng.Database()
		st.Databases = append(st.Databases, DBStats{
			Name:      name,
			Relations: db.NumRelations(),
			Tuples:    db.Size(),
			PrepCache: d.prep.stats(),
		})
	}
	return st
}

// handleStats answers GET /v1/stats with the JSON snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// handleDebug answers GET /debug with the same snapshot as aligned text,
// for eyeballing a live server with curl.
func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "mqserve status\n")
	fmt.Fprintf(&b, "  in_flight       %d / %d\n", st.InFlight, st.MaxInFlight)
	fmt.Fprintf(&b, "  queries         %d\n", st.Queries)
	fmt.Fprintf(&b, "  decisions       %d\n", st.Decisions)
	fmt.Fprintf(&b, "  streams         %d (rows %d, cut %d)\n", st.Streams, st.StreamRows, st.StreamsCut)
	fmt.Fprintf(&b, "  rejected (429)  %d\n", st.Rejected)
	fmt.Fprintf(&b, "  deadline hits   %d\n", st.DeadlineHits)
	fmt.Fprintf(&b, "  answers served  %d\n", st.AnswersServed)
	fmt.Fprintf(&b, "  prep cache      %d hits / %d misses (rate %.3f)\n", st.CacheHits, st.CacheMisses, st.CacheHitRate)
	fmt.Fprintf(&b, "  runtime         %d goroutines, %.1f MiB heap, %d GC cycles (pause %.3fs)\n",
		st.Runtime.Goroutines, float64(st.Runtime.HeapBytes)/(1<<20), st.Runtime.GCCycles, st.Runtime.GCPauseTotalS)
	for _, l := range st.LatencyByEndpoint {
		fmt.Fprintf(&b, "  latency %-8s n=%d p50=%.2fms p95=%.2fms p99=%.2fms\n",
			l.Endpoint, l.Count, l.P50MS, l.P95MS, l.P99MS)
	}
	fmt.Fprintf(&b, "  databases       %d (loads %d, deltas %d)\n", len(st.Databases), st.DBLoads, st.DBDeltas)
	for _, d := range st.Databases {
		fmt.Fprintf(&b, "    %-16s %d relations, %d tuples; cache %d/%d (h%d m%d e%d)\n",
			d.Name, d.Relations, d.Tuples,
			d.PrepCache.Size, d.PrepCache.Capacity, d.PrepCache.Hits, d.PrepCache.Misses, d.PrepCache.Evictions)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, b.String())
}
