package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/rat"
)

// renderedAnswers formats a direct library answer set the way the server
// does, sorted for multiset comparison.
func renderedAnswers(answers []core.Answer) []string {
	out := make([]string, len(answers))
	for i, a := range answers {
		out[i] = fmt.Sprintf("%s|%s|%s|%s", a.Rule.String(), a.Sup.String(), a.Cnf.String(), a.Cvr.String())
	}
	sort.Strings(out)
	return out
}

func renderedJSON(answers []answerJSON) []string {
	out := make([]string, len(answers))
	for i, a := range answers {
		out[i] = fmt.Sprintf("%s|%s|%s|%s", a.Rule, a.Sup, a.Cnf, a.Cvr)
	}
	sort.Strings(out)
	return out
}

// thresholdFields renders a scenario's Thresholds into the request's
// min_sup/min_cnf/min_cvr fields (empty string = check disabled).
func thresholdFields(th core.Thresholds) (sup, cnf, cvr string) {
	if th.CheckSup {
		sup = th.Sup.String()
	}
	if th.CheckCnf {
		cnf = th.Cnf.String()
	}
	if th.CheckCvr {
		cvr = th.Cvr.String()
	}
	return
}

// TestServerDifferentialAgainstEngine sweeps the seeded generator shapes
// through the HTTP surface and checks each endpoint against the direct
// library path on the same scenario:
//
//   - /v1/query answers ≡ Prepared.FindRules (rule strings and exact
//     sup/cnf/cvr values),
//   - /v1/stream rows ≡ /v1/query answers (same multiset, trailer "ok"),
//   - /v1/decide verdicts ≡ Prepared.DecideFirst for each checked index.
//
// This is the transport-level analog of internal/diff's engine-vs-oracle
// sweep: it proves the server adds no query semantics of its own.
func TestServerDifferentialAgainstEngine(t *testing.T) {
	seeds := []int64{1, 2, 3}
	s, ts := newTestServer(t, Config{})

	for _, shape := range gen.Shapes() {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", shape, seed), func(t *testing.T) {
				name := fmt.Sprintf("%s-%d", shape, seed)
				sc := loadScenario(t, s, name, shape, seed)
				minSup, minCnf, minCvr := thresholdFields(sc.Th)

				// Direct library path: same database, metaquery, options.
				prep, err := engine.NewEngine(sc.DB).Prepare(sc.MQ, engine.Options{Type: sc.Type, Thresholds: sc.Th})
				if err != nil {
					t.Fatalf("prepare: %v", err)
				}
				want, err := prep.FindRules(context.Background())
				if err != nil {
					t.Fatalf("find: %v", err)
				}
				wantR := renderedAnswers(want)

				// /v1/query must return the same answer multiset.
				code, body := postJSON(t, ts.URL+"/v1/query", searchRequest{
					DB: name, Query: sc.MQ.String(), Type: int(sc.Type),
					MinSup: minSup, MinCnf: minCnf, MinCvr: minCvr,
				})
				if code != http.StatusOK {
					t.Fatalf("query status %d: %s", code, body)
				}
				var qr queryResponse
				if err := json.Unmarshal(body, &qr); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				gotR := renderedJSON(qr.Answers)
				if len(gotR) != len(wantR) {
					t.Fatalf("server %d answers, engine %d", len(gotR), len(wantR))
				}
				for i := range gotR {
					if gotR[i] != wantR[i] {
						t.Fatalf("answer %d:\n  server %s\n  engine %s", i, gotR[i], wantR[i])
					}
				}

				// /v1/stream must deliver the same multiset with an "ok"
				// trailer.
				code, body = postJSON(t, ts.URL+"/v1/stream", searchRequest{
					DB: name, Query: sc.MQ.String(), Type: int(sc.Type),
					MinSup: minSup, MinCnf: minCnf, MinCvr: minCvr,
				})
				if code != http.StatusOK {
					t.Fatalf("stream status %d: %s", code, body)
				}
				rows, trailer := parseNDJSON(t, body)
				if trailer.Status != "ok" || trailer.Answers != len(rows) {
					t.Fatalf("stream trailer %+v with %d rows", trailer, len(rows))
				}
				if sr := renderedJSON(rows); len(sr) != len(wantR) {
					t.Fatalf("stream %d rows, engine %d answers", len(sr), len(wantR))
				} else {
					for i := range sr {
						if sr[i] != wantR[i] {
							t.Fatalf("stream row %d:\n  server %s\n  engine %s", i, sr[i], wantR[i])
						}
					}
				}

				// The same two endpoints with workers > 1 must produce the
				// same answer multiset: sharded enumeration is a scheduling
				// choice, never a semantic one. The stream's row order is
				// nondeterministic, so only the sorted rendering is compared.
				workers := 2 + int(seed%3)
				code, body = postJSON(t, ts.URL+"/v1/query", searchRequest{
					DB: name, Query: sc.MQ.String(), Type: int(sc.Type),
					MinSup: minSup, MinCnf: minCnf, MinCvr: minCvr,
					Workers: workers,
				})
				if code != http.StatusOK {
					t.Fatalf("parallel query status %d: %s", code, body)
				}
				var pqr queryResponse
				if err := json.Unmarshal(body, &pqr); err != nil {
					t.Fatalf("unmarshal parallel query: %v", err)
				}
				if pr := renderedJSON(pqr.Answers); len(pr) != len(wantR) {
					t.Fatalf("parallel query (workers=%d) %d answers, engine %d", workers, len(pr), len(wantR))
				} else {
					for i := range pr {
						if pr[i] != wantR[i] {
							t.Fatalf("parallel query answer %d (workers=%d):\n  server %s\n  engine %s", i, workers, pr[i], wantR[i])
						}
					}
				}
				code, body = postJSON(t, ts.URL+"/v1/stream", searchRequest{
					DB: name, Query: sc.MQ.String(), Type: int(sc.Type),
					MinSup: minSup, MinCnf: minCnf, MinCvr: minCvr,
					Workers: workers,
				})
				if code != http.StatusOK {
					t.Fatalf("parallel stream status %d: %s", code, body)
				}
				prows, ptrailer := parseNDJSON(t, body)
				if ptrailer.Status != "ok" || ptrailer.Answers != len(prows) {
					t.Fatalf("parallel stream trailer %+v with %d rows", ptrailer, len(prows))
				}
				if sr := renderedJSON(prows); len(sr) != len(wantR) {
					t.Fatalf("parallel stream (workers=%d) %d rows, engine %d answers", workers, len(sr), len(wantR))
				} else {
					for i := range sr {
						if sr[i] != wantR[i] {
							t.Fatalf("parallel stream row %d (workers=%d):\n  server %s\n  engine %s", i, workers, sr[i], wantR[i])
						}
					}
				}

				// /v1/decide verdicts must match DecideFirst per index.
				for _, c := range []struct {
					ix      core.Index
					checked bool
					k       rat.Rat
				}{
					{core.Sup, sc.Th.CheckSup, sc.Th.Sup},
					{core.Cnf, sc.Th.CheckCnf, sc.Th.Cnf},
					{core.Cvr, sc.Th.CheckCvr, sc.Th.Cvr},
				} {
					if !c.checked {
						continue
					}
					wantYes, _, err := prep.DecideFirst(context.Background(), c.ix, c.k)
					if err != nil {
						t.Fatalf("decide %v: %v", c.ix, err)
					}
					code, body := postJSON(t, ts.URL+"/v1/decide", decideRequest{
						DB: name, Query: sc.MQ.String(), Type: int(sc.Type),
						Index: c.ix.String(), K: c.k.String(),
					})
					if code != http.StatusOK {
						t.Fatalf("decide %v status %d: %s", c.ix, code, body)
					}
					var dr decideResponse
					if err := json.Unmarshal(body, &dr); err != nil {
						t.Fatalf("unmarshal decide: %v", err)
					}
					if dr.Yes != wantYes {
						t.Fatalf("decide %v > %s: server %v, engine %v", c.ix, c.k.String(), dr.Yes, wantYes)
					}
					if wantYes && dr.Witness == "" {
						t.Fatalf("decide %v: YES without witness", c.ix)
					}
				}
			})
		}
	}
}
