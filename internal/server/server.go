// Package server is the metaquery server behind cmd/mqserve: it exposes a
// registry of named databases — each backed by one shared, concurrency-safe
// Engine — over HTTP/JSON, with a prepared-metaquery LRU cache keyed by
// variable-renaming-invariant query shape, per-request deadlines riding the
// engine's context plumbing, bounded-concurrency admission control (429 +
// Retry-After on saturation), and streamed NDJSON answers backed by
// Prepared.Stream with flush-per-row and client-disconnect cancellation.
//
// Endpoints:
//
//	POST /v1/query     full sorted answers as one JSON document
//	POST /v1/decide    first-witness YES/NO for one index bound
//	POST /v1/stream    answers as NDJSON rows + a trailer status line
//	POST /v1/db/{name} load or replace a named database (CSV dir or inline)
//	PATCH /v1/db/{name} apply a tuple delta incrementally (Engine.Apply),
//	                   keeping the prepared-metaquery cache warm
//	GET  /v1/db        list the registered databases
//	GET  /v1/stats     machine-readable server/cache/engine statistics
//	GET  /debug        the same statistics as human-readable text
//	GET  /metrics      Prometheus text exposition (latency histograms,
//	                   counters, engine histograms, Go runtime health)
//	GET  /debug/pprof/ net/http/pprof profiles (only with Config.EnablePprof)
//
// Search requests may set "trace": true to receive the execution's span
// tree (epoch binding, node joins with estimate-vs-actual rows, parallel
// chunks, approx sampling) in the response — /v1/query and /v1/decide
// attach it to the JSON document, /v1/stream to the trailer line. With
// Config.SlowQuery set, requests slower than the threshold dump the same
// tree to the structured log.
//
// The decision and enumeration handlers run the exact same Prepared paths
// internal/diff verifies against the brute-force oracle; the server adds
// transport, admission and caching but no query semantics of its own.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/mqgo/metaquery/internal/engine"
)

// Config carries the admission-control and caching knobs of a Server.
// The zero value is usable: every field has a default.
type Config struct {
	// MaxInFlight bounds the number of concurrently executing search
	// requests (query, decide and stream combined). Requests beyond the
	// bound are rejected with 429 and a Retry-After header rather than
	// queued, so saturation sheds load instead of growing latency.
	// Default 64. Negative means 0 (reject everything; useful in tests).
	MaxInFlight int
	// DefaultTimeout is the per-request search deadline applied when the
	// request names none. Default 10s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines. Default 2m.
	MaxTimeout time.Duration
	// MaxRequestBytes caps request body sizes. Default 16 MiB (inline
	// database loads are the big ones).
	MaxRequestBytes int64
	// PrepCacheSize is the per-database prepared-metaquery LRU capacity.
	// Default 256.
	PrepCacheSize int
	// RetryAfter is the value of the Retry-After header on 429 responses,
	// in seconds. Default 1.
	RetryAfter int

	// Logger, when non-nil, receives one structured line per search
	// request (endpoint, database, status, outcome, duration) and the
	// slow-query warnings. nil disables request logging.
	Logger *slog.Logger
	// SlowQuery, when positive (and Logger is set), traces every search
	// request and dumps the span tree of any request slower than this
	// threshold at warning level.
	SlowQuery time.Duration
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	// Off by default: profiling endpoints expose process internals.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.MaxInFlight < 0 {
		c.MaxInFlight = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 16 << 20
	}
	if c.PrepCacheSize <= 0 {
		c.PrepCacheSize = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	return c
}

// metrics are the server's cumulative counters, all updated atomically and
// reported by /v1/stats and /debug.
type metrics struct {
	queries     atomic.Uint64 // /v1/query requests admitted
	decisions   atomic.Uint64 // /v1/decide requests admitted
	streams     atomic.Uint64 // /v1/stream requests admitted
	rejected    atomic.Uint64 // 429 responses (semaphore saturated)
	inFlight    atomic.Int64  // currently executing search requests
	dbLoads     atomic.Uint64 // databases loaded or replaced
	dbDeltas    atomic.Uint64 // PATCH deltas applied (Engine.Apply)
	cacheHits   atomic.Uint64 // prepared-cache hits across all databases
	cacheMisses atomic.Uint64 // prepared-cache misses across all databases

	streamRows    atomic.Uint64 // NDJSON answer rows written
	streamsCut    atomic.Uint64 // streams ended early by disconnect/deadline
	deadlineHits  atomic.Uint64 // requests ended by their deadline
	answersServed atomic.Uint64 // answers returned by /v1/query
}

// Server is the metaquery HTTP server state: the named-database registry,
// the admission semaphore and the metrics. Construct with New, register
// databases with LoadDir/LoadDatabase, and mount Handler on an
// http.Server.
type Server struct {
	cfg     Config
	reg     *registry
	sem     chan struct{}
	mux     *http.ServeMux
	metrics metrics
	lat     latencies

	// Test hooks (nil outside tests): holdSearch blocks while a semaphore
	// slot is held, making saturation deterministic; streamSent observes
	// (and may block after) each written NDJSON row, making mid-stream
	// disconnects deterministic; streamDone observes each stream's final
	// search counters and error.
	holdSearch func()
	streamSent func(n int)
	streamDone func(st *engine.Stats, err error)
}

// New builds a Server with no databases registered.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		reg: newRegistry(),
		sem: make(chan struct{}, cfg.MaxInFlight),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/query", s.observe("query", s.admitted(s.handleQuery, &s.metrics.queries)))
	s.mux.HandleFunc("POST /v1/decide", s.observe("decide", s.admitted(s.handleDecide, &s.metrics.decisions)))
	s.mux.HandleFunc("POST /v1/stream", s.observe("stream", s.admitted(s.handleStream, &s.metrics.streams)))
	s.mux.HandleFunc("POST /v1/db/{name}", s.handleLoadDB)
	s.mux.HandleFunc("PATCH /v1/db/{name}", s.handleApplyDB)
	s.mux.HandleFunc("GET /v1/db", s.handleListDB)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /debug", s.handleDebug)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.EnablePprof {
		s.mountPprof()
	}
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// admitted wraps a search handler with the bounded-concurrency semaphore:
// a free slot admits the request (counted in reqs and inFlight for the
// duration), a full semaphore answers 429 with Retry-After immediately.
func (s *Server) admitted(h http.HandlerFunc, reqs *atomic.Uint64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.metrics.rejected.Add(1)
			w.Header().Set("Retry-After", fmt.Sprintf("%d", s.cfg.RetryAfter))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("server saturated (%d searches in flight); retry later", s.cfg.MaxInFlight))
			return
		}
		reqs.Add(1)
		s.metrics.inFlight.Add(1)
		defer func() {
			s.metrics.inFlight.Add(-1)
			<-s.sem
		}()
		if s.holdSearch != nil {
			s.holdSearch()
		}
		h(w, r)
	}
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	encode(w, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	encode(w, v)
}

// encode writes v as JSON without HTML escaping: rule strings contain
// "<-" and must stay readable in responses and NDJSON rows.
func encode(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// decodeBody decodes the request body as JSON into v, bounded by the
// configured body cap. Malformed JSON (and unknown fields, which are
// almost always client typos of an admission knob) is a client error.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}
