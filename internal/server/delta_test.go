package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// patchJSON sends body as a JSON PATCH and returns status code and answer.
func patchJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch, url, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PATCH %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestApplyEndpoint drives PATCH /v1/db/{name}: the delta lands in the
// engine (epoch advances, query answers change), and — unlike a POST
// replacement — the prepared-metaquery cache stays warm across it.
func TestApplyEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.LoadDatabase("fig1", figure1DB())

	ask := func() queryResponse {
		code, body := postJSON(t, ts.URL+"/v1/query", searchRequest{
			DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0, MinSup: "0",
		})
		if code != http.StatusOK {
			t.Fatalf("query status %d: %s", code, body)
		}
		var resp queryResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	before := ask()
	if before.CacheHit {
		t.Fatal("first query must be a cache miss")
	}

	code, body := patchJSON(t, ts.URL+"/v1/db/fig1", jsonDelta{Relations: []jsonRelationDelta{{
		Name:   "citizen",
		Insert: [][]string{{"anna", "italy"}, {"pierre", "france"}},
		Delete: [][]string{{"maria", "italy"}},
	}}})
	if code != http.StatusOK {
		t.Fatalf("patch status %d: %s", code, body)
	}
	var dr deltaResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Epoch != 1 || dr.Inserted != 2 || dr.Deleted != 1 {
		t.Fatalf("delta response %+v, want epoch 1, 2 inserts, 1 delete", dr)
	}

	after := ask()
	if !after.CacheHit {
		t.Fatal("PATCH discarded the prepared cache; the repeat query missed")
	}
	sameAnswers := len(after.Answers) == len(before.Answers)
	if sameAnswers {
		for i := range after.Answers {
			if after.Answers[i] != before.Answers[i] {
				sameAnswers = false
				break
			}
		}
	}
	if sameAnswers {
		t.Fatal("query answers unchanged by the delta")
	}

	infos := getJSON[[]dbInfo](t, ts.URL+"/v1/db")
	if len(infos) != 1 || infos[0].Tuples != 6 {
		t.Fatalf("db listing %+v, want 1 database with 6 tuples", infos)
	}
	st := getJSON[Stats](t, ts.URL+"/v1/stats")
	if st.DBDeltas != 1 {
		t.Fatalf("stats report %d deltas, want 1", st.DBDeltas)
	}
}

// PATCH errors: unknown database, empty delta, invalid delta — each leaves
// the engine untouched.
func TestApplyEndpointErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.LoadDatabase("fig1", figure1DB())

	if code, _ := patchJSON(t, ts.URL+"/v1/db/nope", jsonDelta{Relations: []jsonRelationDelta{{Name: "r", Arity: 1}}}); code != http.StatusNotFound {
		t.Fatalf("unknown db: status %d, want 404", code)
	}
	if code, _ := patchJSON(t, ts.URL+"/v1/db/fig1", jsonDelta{}); code != http.StatusBadRequest {
		t.Fatalf("empty delta: status %d, want 400", code)
	}
	if code, body := patchJSON(t, ts.URL+"/v1/db/fig1", jsonDelta{Relations: []jsonRelationDelta{{
		Name: "citizen", Insert: [][]string{{"only-one-term"}},
	}}}); code != http.StatusBadRequest {
		t.Fatalf("arity mismatch: status %d (%s), want 400", code, body)
	}
	d, _ := s.reg.get("fig1")
	if d.eng.Epoch() != 0 {
		t.Fatalf("failed PATCHes advanced the epoch to %d", d.eng.Epoch())
	}
}

// TestReplaceDatabaseMidStream is the replacement-path regression test: a
// POST to /v1/db/{name} swaps the registry entry with zero coordination
// against searches already streaming from the old engine. The in-flight
// stream must complete on the snapshot it started with — full answer count,
// clean trailer — while requests arriving after the swap see the new data.
// The swap happens deterministically after the first streamed row, inside
// the streamSent hook.
func TestReplaceDatabaseMidStream(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sc := loadScenario(t, s, "live", "t1-cycle", 1)
	req := searchRequest{DB: "live", Query: sc.MQ.String(), Type: int(sc.Type)}

	// Baseline: the full answer count on the original database.
	code, body := postJSON(t, ts.URL+"/v1/query", req)
	if code != http.StatusOK {
		t.Fatalf("baseline query status %d: %s", code, body)
	}
	var baseline queryResponse
	if err := json.Unmarshal(body, &baseline); err != nil {
		t.Fatal(err)
	}
	if len(baseline.Answers) < 2 {
		t.Fatalf("scenario yields %d answers; need >= 2 to observe a mid-stream swap", len(baseline.Answers))
	}

	var once sync.Once
	s.streamSent = func(n int) {
		once.Do(func() {
			// Replace the database out from under the running stream.
			s.LoadDatabase("live", figure1DB())
		})
	}
	defer func() { s.streamSent = nil }()

	code, body = postJSON(t, ts.URL+"/v1/stream", req)
	if code != http.StatusOK {
		t.Fatalf("stream status %d: %s", code, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	var trailer streamTrailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("trailer line %q: %v", lines[len(lines)-1], err)
	}
	if trailer.Status != "ok" {
		t.Fatalf("stream trailer %+v; the swap must not disturb the in-flight search", trailer)
	}
	if rows := len(lines) - 1; rows != len(baseline.Answers) {
		t.Fatalf("in-flight stream delivered %d rows across the swap, want the old snapshot's %d", rows, len(baseline.Answers))
	}

	// Requests after the swap run against the replacement database.
	infos := getJSON[[]dbInfo](t, ts.URL+"/v1/db")
	if len(infos) != 1 || infos[0].Tuples != figure1DB().Size() {
		t.Fatalf("post-swap listing %+v, want the replacement database's %d tuples", infos, figure1DB().Size())
	}
	code, body = postJSON(t, ts.URL+"/v1/query", searchRequest{
		DB: "live", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0, MinCnf: "1/2",
	})
	if code != http.StatusOK {
		t.Fatalf("post-swap query status %d: %s", code, body)
	}
	var after queryResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range after.Answers {
		if a.Rule == "speaks(X,Z) <- citizen(X,Y), language(Y,Z)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-swap query does not see the replacement data: %s", body)
	}
}
