package server

import (
	"fmt"
	"sort"
	"sync"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/relation"
)

// database is one named registry entry: a shared Engine over an immutable
// database snapshot plus the prepared-metaquery cache riding on it. All
// requests naming the database share both.
type database struct {
	name string
	eng  *engine.Engine
	prep *prepCache
}

// registry maps database names to their engines. Loading a name that
// already exists atomically replaces the engine and discards the prepared
// cache (the old engine stays valid for requests already holding it — an
// Engine snapshots its database — so replacement never disturbs in-flight
// searches).
type registry struct {
	mu  sync.RWMutex
	dbs map[string]*database
}

func newRegistry() *registry {
	return &registry{dbs: make(map[string]*database)}
}

func (r *registry) get(name string) (*database, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.dbs[name]
	return d, ok
}

func (r *registry) put(name string, eng *engine.Engine, cacheSize int) *database {
	d := &database{name: name, eng: eng, prep: newPrepCache(cacheSize)}
	r.mu.Lock()
	r.dbs[name] = d
	r.mu.Unlock()
	return d
}

func (r *registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.dbs))
	for name := range r.dbs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LoadDir loads every *.csv file under dir as a relation and registers the
// resulting database (and a fresh Engine over it) under name.
func (s *Server) LoadDir(name, dir string) error {
	db, err := relation.LoadCSVDir(dir)
	if err != nil {
		return err
	}
	s.LoadDatabase(name, db)
	return nil
}

// LoadDatabase registers db under name, replacing any previous engine of
// that name. The server takes ownership of db: it must not be modified
// afterwards (the Engine snapshots it at construction). Engine metrics are
// enabled on registration so /metrics exposes every database's node-join
// histograms.
func (s *Server) LoadDatabase(name string, db *relation.Database) {
	eng := engine.NewEngine(db)
	eng.EnableMetrics()
	s.reg.put(name, eng, s.cfg.PrepCacheSize)
	s.metrics.dbLoads.Add(1)
}

// prepared resolves the Prepared for (db, mq, opt) through the database's
// LRU cache: a hit skips validation and decomposition and reuses the
// warm node-join cache; a miss prepares and inserts. The bool reports
// whether it was a hit.
func (s *Server) prepared(d *database, mq *core.Metaquery, opt engine.Options) (*engine.Prepared, bool, error) {
	key := prepKey(mq, opt)
	if p, ok := d.prep.get(key); ok {
		s.metrics.cacheHits.Add(1)
		return p, true, nil
	}
	p, err := d.eng.Prepare(mq, opt)
	if err != nil {
		return nil, false, err
	}
	s.metrics.cacheMisses.Add(1)
	return d.prep.add(key, p), false, nil
}

// jsonDatabase is the wire form of an inline database load: either a
// server-side CSV directory or the relations spelled out.
type jsonDatabase struct {
	// Dir, when set, loads every *.csv under the server-side directory.
	Dir string `json:"dir,omitempty"`
	// Relations, when Dir is empty, define the database inline.
	Relations []jsonRelation `json:"relations,omitempty"`
}

type jsonRelation struct {
	Name   string     `json:"name"`
	Arity  int        `json:"arity"`
	Tuples [][]string `json:"tuples"`
}

// build materializes the wire form into a relation.Database.
func (j *jsonDatabase) build() (*relation.Database, error) {
	if j.Dir != "" {
		if len(j.Relations) > 0 {
			return nil, fmt.Errorf("specify dir or relations, not both")
		}
		return relation.LoadCSVDir(j.Dir)
	}
	if len(j.Relations) == 0 {
		return nil, fmt.Errorf("database needs a dir or at least one relation")
	}
	db := relation.NewDatabase()
	for _, rel := range j.Relations {
		if _, err := db.AddRelation(rel.Name, rel.Arity); err != nil {
			return nil, err
		}
		for _, row := range rel.Tuples {
			if err := db.InsertNamed(rel.Name, row...); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}
