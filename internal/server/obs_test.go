package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// promLine matches one non-comment line of the Prometheus text exposition
// format 0.0.4: metric name, optional label list, and a float value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(-?[0-9.e+-]+|\+Inf|NaN)$`)

// promComment matches # HELP and # TYPE lines.
var promComment = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsExposition serves a few requests and validates the /metrics
// scrape: every line parses under the exposition grammar, the request
// latency histogram carries the endpoint × db × outcome labels, and the
// engine's node-join histograms are exported per database.
func TestMetricsExposition(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.LoadDatabase("fig1", figure1DB())

	if code, body := postJSON(t, ts.URL+"/v1/query", searchRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0,
	}); code != http.StatusOK {
		t.Fatalf("query status %d: %s", code, body)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/decide", decideRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Index: "cnf", K: "1/2",
	}); code != http.StatusOK {
		t.Fatalf("decide status %d", code)
	}
	// A missing database must classify as client_error without minting a
	// db label value.
	if code, _ := postJSON(t, ts.URL+"/v1/query", searchRequest{
		DB: "nope", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)",
	}); code != http.StatusNotFound {
		t.Fatalf("unknown-db status %d", code)
	}

	body := scrape(t, ts.URL+"/metrics")
	for i, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !promComment.MatchString(line) {
				t.Fatalf("line %d: bad comment %q", i+1, line)
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line %d: bad sample %q", i+1, line)
		}
	}
	for _, want := range []string{
		`mq_requests_total{endpoint="query"} 2`,
		`mq_requests_total{endpoint="decide"} 1`,
		`mq_request_duration_seconds_bucket{endpoint="query",db="fig1",outcome="ok",le="+Inf"} 1`,
		`mq_request_duration_seconds_bucket{endpoint="query",db="",outcome="client_error",le="+Inf"} 1`,
		`mq_request_duration_seconds_count{endpoint="decide",db="fig1",outcome="ok"} 1`,
		`mq_node_join_duration_seconds_bucket{db="fig1",le="+Inf"}`,
		`mq_node_join_est_actual_ratio_count{db="fig1"}`,
		`mq_db_tuples{db="fig1"} 5`,
		"go_goroutines ",
		"go_heap_inuse_bytes ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestTraceResponses checks the "trace": true request field end to end:
// /v1/query and /v1/decide attach a span forest whose node-join spans
// carry estimate-vs-actual row counts, and /v1/stream attaches it to the
// trailer line.
func TestTraceResponses(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.LoadDatabase("fig1", figure1DB())

	findJoins := func(t *testing.T, trace []*spanNode) []*spanNode {
		t.Helper()
		var joins []*spanNode
		var walk func(n *spanNode)
		walk = func(n *spanNode) {
			if n.Name == "node-join" {
				joins = append(joins, n)
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		for _, n := range trace {
			walk(n)
		}
		return joins
	}

	code, body := postJSON(t, ts.URL+"/v1/query", searchRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0, Trace: true,
	})
	if code != http.StatusOK {
		t.Fatalf("query status %d: %s", code, body)
	}
	var qr struct {
		Answers []answerJSON `json:"answers"`
		Trace   []*spanNode  `json:"trace"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Trace) == 0 {
		t.Fatalf("query response has no trace: %s", body)
	}
	joins := findJoins(t, qr.Trace)
	if len(joins) == 0 {
		t.Fatalf("trace has no node-join spans: %s", body)
	}
	for _, j := range joins {
		if j.Attrs["est_rows"] == "" || j.Attrs["rows"] == "" {
			t.Fatalf("node-join span missing est_rows/rows: %v", j.Attrs)
		}
	}

	code, body = postJSON(t, ts.URL+"/v1/decide", decideRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Index: "cnf", K: "1/2", Trace: true,
	})
	if code != http.StatusOK {
		t.Fatalf("decide status %d: %s", code, body)
	}
	var dr struct {
		Yes   bool        `json:"yes"`
		Trace []*spanNode `json:"trace"`
	}
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Trace) == 0 {
		t.Fatalf("decide response has no trace: %s", body)
	}
	if len(findJoins(t, dr.Trace)) == 0 {
		t.Fatalf("decide trace has no node-join spans: %s", body)
	}

	// Untraced requests must not pay for (or leak) a trace.
	code, body = postJSON(t, ts.URL+"/v1/decide", decideRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Index: "cnf", K: "1/2",
	})
	if code != http.StatusOK {
		t.Fatalf("decide status %d: %s", code, body)
	}
	if strings.Contains(string(body), `"trace"`) {
		t.Fatalf("untraced decide leaked a trace: %s", body)
	}

	// Stream: the trailer (last NDJSON line) carries the trace.
	code, body = postJSON(t, ts.URL+"/v1/stream", searchRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0, Trace: true,
	})
	if code != http.StatusOK {
		t.Fatalf("stream status %d: %s", code, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	var trailer struct {
		Status string      `json:"status"`
		Trace  []*spanNode `json:"trace"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("trailer: %v", err)
	}
	if trailer.Status != "ok" || len(trailer.Trace) == 0 {
		t.Fatalf("stream trailer missing trace: %s", lines[len(lines)-1])
	}
}

// spanNode mirrors obs.SpanTree's wire form for response assertions.
type spanNode struct {
	Name     string            `json:"name"`
	Attrs    map[string]string `json:"attrs"`
	Children []*spanNode       `json:"children"`
}

// TestSlowQueryLogging sets a zero-distance slow threshold and checks that
// every request logs one structured line and slow ones add a warning with
// the rendered span tree.
func TestSlowQueryLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s, ts := newTestServer(t, Config{Logger: logger, SlowQuery: time.Nanosecond})
	s.LoadDatabase("fig1", figure1DB())

	if code, body := postJSON(t, ts.URL+"/v1/query", searchRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0,
	}); code != http.StatusOK {
		t.Fatalf("query status %d: %s", code, body)
	}
	logs := buf.String()
	if !strings.Contains(logs, `msg=request`) || !strings.Contains(logs, `endpoint=query`) {
		t.Fatalf("no request log line:\n%s", logs)
	}
	if !strings.Contains(logs, `msg="slow query"`) {
		t.Fatalf("no slow-query warning:\n%s", logs)
	}
	if !strings.Contains(logs, "findrules") || !strings.Contains(logs, "node-join") {
		t.Fatalf("slow-query dump missing span tree:\n%s", logs)
	}
}

// TestLoadDirAndConfig drives the CSV-directory registration path (the
// one mqserve -db uses) and the effective-config accessor.
func TestLoadDirAndConfig(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"citizen.csv":  "john,italy\n",
		"language.csv": "italy,italian\n",
		"speaks.csv":   "john,italian\n",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, ts := newTestServer(t, Config{SlowQuery: time.Second})
	if err := s.LoadDir("fig1", dir); err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if err := s.LoadDir("bad", filepath.Join(dir, "missing")); err == nil {
		t.Fatal("LoadDir on a missing directory succeeded")
	}
	if code, body := postJSON(t, ts.URL+"/v1/query", searchRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0,
	}); code != http.StatusOK {
		t.Fatalf("query over LoadDir database: status %d: %s", code, body)
	}
	cfg := s.Config()
	if cfg.SlowQuery != time.Second || cfg.MaxInFlight <= 0 {
		t.Fatalf("Config() not defaulted/propagated: %+v", cfg)
	}
}

// TestPprofGate checks that the pprof surface exists only behind the
// config switch.
func TestPprofGate(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof mounted without EnablePprof")
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d with EnablePprof", resp.StatusCode)
	}
}

// TestStatsLatencyAndRuntime checks the /v1/stats additions: runtime
// health and per-endpoint latency percentiles (the server side of the
// mqbench E23 cross-check).
func TestStatsLatencyAndRuntime(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.LoadDatabase("fig1", figure1DB())
	for i := 0; i < 3; i++ {
		if code, body := postJSON(t, ts.URL+"/v1/query", searchRequest{
			DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0,
		}); code != http.StatusOK {
			t.Fatalf("query status %d: %s", code, body)
		}
	}
	st := getJSON[Stats](t, ts.URL+"/v1/stats")
	if st.Runtime.Goroutines <= 0 || st.Runtime.HeapBytes == 0 {
		t.Fatalf("runtime health not populated: %+v", st.Runtime)
	}
	if len(st.LatencyByEndpoint) == 0 {
		t.Fatalf("no per-endpoint latency: %+v", st)
	}
	q := st.LatencyByEndpoint[0]
	if q.Endpoint != "query" || q.Count != 3 {
		t.Fatalf("query latency summary wrong: %+v", q)
	}
	if q.P50MS <= 0 || q.P99MS < q.P50MS {
		t.Fatalf("implausible percentiles: %+v", q)
	}
	if len(st.Latency) == 0 || st.Latency[0].Outcome != "ok" {
		t.Fatalf("per-series latency missing: %+v", st.Latency)
	}

	// /debug renders the same numbers as text.
	resp, err := http.Get(ts.URL + "/debug")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "latency query") || !strings.Contains(string(body), "goroutines") {
		t.Fatalf("/debug missing latency/runtime:\n%s", body)
	}
}
