package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/relation"
)

// figure1DB is the paper's running example: citizen/language/speaks.
func figure1DB() *relation.Database {
	db := relation.NewDatabase()
	db.MustAddRelation("citizen", 2)
	db.MustAddRelation("language", 2)
	db.MustAddRelation("speaks", 2)
	db.MustInsertNamed("citizen", "john", "italy")
	db.MustInsertNamed("citizen", "maria", "italy")
	db.MustInsertNamed("language", "italy", "italian")
	db.MustInsertNamed("speaks", "john", "italian")
	db.MustInsertNamed("speaks", "maria", "italian")
	return db
}

// newTestServer builds a Server plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts body as JSON and returns the status code and raw answer.
func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	code, out, err := postJSONErr(url, body)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return code, out
}

// postJSONErr is postJSON returning transport errors instead of failing
// the test, for use off the test goroutine.
func postJSONErr(url string, body any) (int, []byte, error) {
	blob, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return v
}

// loadScenario registers a gen scenario's database under name and returns
// the scenario.
func loadScenario(t *testing.T, s *Server, name, shape string, seed int64) *gen.Scenario {
	t.Helper()
	sc, err := gen.NewScenario(seed, shape)
	if err != nil {
		t.Fatalf("scenario %s/%d: %v", shape, seed, err)
	}
	s.LoadDatabase(name, sc.DB)
	return sc
}

func TestQueryEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.LoadDatabase("fig1", figure1DB())

	code, body := postJSON(t, ts.URL+"/v1/query", searchRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0,
		MinSup: "0", MinCnf: "1/2", MinCvr: "0",
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp queryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(resp.Answers) == 0 {
		t.Fatalf("no answers: %s", body)
	}
	if resp.CacheHit {
		t.Fatalf("first query must be a cache miss")
	}
	if resp.Stats == nil || resp.Stats.Answers != len(resp.Answers) {
		t.Fatalf("stats missing or inconsistent: %+v", resp.Stats)
	}
	// The paper's rule must be among the answers.
	want := "speaks(X,Z) <- citizen(X,Y), language(Y,Z)"
	found := false
	for _, a := range resp.Answers {
		if a.Rule == want {
			found = true
			if a.Sup != "1" || a.Cnf != "1" {
				t.Fatalf("unexpected indices for %s: %+v", want, a)
			}
		}
	}
	if !found {
		t.Fatalf("expected rule %q in answers: %s", want, body)
	}
}

func TestPreparedCacheAlphaEquivalentHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.LoadDatabase("fig1", figure1DB())

	ask := func(query string) queryResponse {
		code, body := postJSON(t, ts.URL+"/v1/query", searchRequest{DB: "fig1", Query: query, Type: 1})
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var resp queryResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		return resp
	}

	first := ask("R(X,Z) <- P(X,Y), Q(Y,Z)")
	if first.CacheHit {
		t.Fatalf("first query must miss")
	}
	// α-equivalent renaming must hit the same cache entry...
	renamed := ask("S(A,C) <- T(A,B), U(B,C)")
	if !renamed.CacheHit {
		t.Fatalf("α-equivalent query should hit the prepared cache")
	}
	// ...and return the identical answer set (the representative's naming).
	if fmt.Sprint(first.Answers) != fmt.Sprint(renamed.Answers) {
		t.Fatalf("α-equivalent answers differ:\n%v\nvs\n%v", first.Answers, renamed.Answers)
	}
	// A different equality pattern must NOT hit.
	other := ask("R(X,X) <- P(X,Y), Q(Y,X)")
	if other.CacheHit {
		t.Fatalf("non-equivalent query must not hit the cache")
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 2 {
		t.Fatalf("cache counters: hits=%d misses=%d (want 1/2)", st.CacheHits, st.CacheMisses)
	}
}

func TestDecideEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.LoadDatabase("fig1", figure1DB())

	code, body := postJSON(t, ts.URL+"/v1/decide", decideRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0, Index: "cnf", K: "1/2",
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp decideResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !resp.Yes || resp.Witness == "" {
		t.Fatalf("expected YES with witness: %s", body)
	}
	// An impossible bound answers NO.
	code, body = postJSON(t, ts.URL+"/v1/decide", decideRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0, Index: "cnf", K: "1",
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	resp = decideResponse{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Yes || resp.Witness != "" {
		t.Fatalf("expected NO without witness: %s", body)
	}
	// The workers knob must be honored (and keyed separately in the cache).
	code, body = postJSON(t, ts.URL+"/v1/decide", decideRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0, Index: "cnf", K: "1/2", Workers: 3,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !resp.Yes {
		t.Fatalf("workers=3 flipped the verdict: %s", body)
	}
	if resp.CacheHit {
		t.Fatalf("workers=3 must prepare its own cache entry (Workers is part of the key)")
	}
	if resp.Method != "exact" {
		t.Fatalf("exact decision reports method %q, want \"exact\": %s", resp.Method, body)
	}
}

// /v1/decide with epsilon/delta runs the sampling ε–δ path: the verdict
// must agree with the exact one on this tiny database (sampling covers the
// population), the response must say so via "method": "approx", and the
// approx parameters must key their own prepared-cache entry.
func TestDecideApproxEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.LoadDatabase("fig1", figure1DB())

	ask := func(req decideRequest) (decideResponse, []byte) {
		t.Helper()
		code, body := postJSON(t, ts.URL+"/v1/decide", req)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var resp decideResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		return resp, body
	}

	exact, _ := ask(decideRequest{DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0, Index: "cnf", K: "1/2"})
	approx, body := ask(decideRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0, Index: "cnf", K: "1/2",
		Epsilon: 0.1, Delta: 0.1,
	})
	if approx.Method != "approx" {
		t.Fatalf("method %q, want \"approx\": %s", approx.Method, body)
	}
	if approx.Yes != exact.Yes {
		t.Fatalf("approx verdict %v differs from exact %v on a fully covered population", approx.Yes, exact.Yes)
	}
	if approx.Yes && approx.Witness == "" {
		t.Fatalf("approx YES without witness: %s", body)
	}
	if approx.CacheHit {
		t.Fatal("approx request must prepare its own cache entry (epsilon/delta are part of the key)")
	}
	// Replay hits the approx entry, never the exact one.
	again, _ := ask(decideRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0, Index: "cnf", K: "1/2",
		Epsilon: 0.1, Delta: 0.1,
	})
	if !again.CacheHit {
		t.Fatal("identical approx request should hit the prepared cache")
	}

	// Out-of-range and half-configured parameters are rejected up front.
	for _, bad := range []decideRequest{
		{DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Index: "cnf", Epsilon: 1.5, Delta: 0.1},
		{DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Index: "cnf", Epsilon: 0.1, Delta: -1},
		{DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Index: "cnf", Epsilon: 0.1},
		{DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Index: "cnf", Delta: 0.1},
		{DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Index: "cnf", Epsilon: 0.1, Delta: 0.1, MaxSamples: -1},
	} {
		code, body := postJSON(t, ts.URL+"/v1/decide", bad)
		if code != http.StatusBadRequest {
			t.Fatalf("invalid approx params %+v: status %d, want 400: %s", bad, code, body)
		}
	}
}

func TestStreamEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.LoadDatabase("fig1", figure1DB())

	code, body := postJSON(t, ts.URL+"/v1/stream", searchRequest{
		DB: "fig1", Query: "R(X,Z) <- P(X,Y), Q(Y,Z)", Type: 0,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	rows, trailer := parseNDJSON(t, body)
	if trailer.Status != "ok" {
		t.Fatalf("trailer: %+v", trailer)
	}
	if trailer.Answers != len(rows) {
		t.Fatalf("trailer says %d answers, stream carried %d", trailer.Answers, len(rows))
	}
	if len(rows) == 0 {
		t.Fatalf("no rows streamed")
	}
	st := s.Stats()
	if st.StreamRows != uint64(len(rows)) || st.Streams != 1 {
		t.Fatalf("stream metrics: %+v", st)
	}
}

// parseNDJSON splits an NDJSON body into answer rows and the trailer line.
func parseNDJSON(t *testing.T, body []byte) ([]answerJSON, streamTrailer) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) == 0 {
		t.Fatalf("empty NDJSON body")
	}
	var trailer streamTrailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("trailer line %q: %v", lines[len(lines)-1], err)
	}
	if trailer.Status == "" {
		t.Fatalf("last line is not a trailer: %q", lines[len(lines)-1])
	}
	var rows []answerJSON
	for _, line := range lines[:len(lines)-1] {
		var a answerJSON
		if err := json.Unmarshal([]byte(line), &a); err != nil {
			t.Fatalf("row %q: %v", line, err)
		}
		rows = append(rows, a)
	}
	return rows, trailer
}

func TestDBLoadAndList(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Inline load.
	code, body := postJSON(t, ts.URL+"/v1/db/tiny", jsonDatabase{
		Relations: []jsonRelation{
			{Name: "e", Arity: 2, Tuples: [][]string{{"a", "b"}, {"b", "c"}}},
			{Name: "n", Arity: 1, Tuples: [][]string{{"a"}}},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("load status %d: %s", code, body)
	}
	var info dbInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if info.Relations != 2 || info.Tuples != 3 {
		t.Fatalf("load info: %+v", info)
	}

	// It is immediately queryable.
	code, body = postJSON(t, ts.URL+"/v1/query", searchRequest{DB: "tiny", Query: "R(X,Y) <- P(X,Y)", Type: 0})
	if code != http.StatusOK {
		t.Fatalf("query status %d: %s", code, body)
	}

	// Listed.
	dbs := getJSON[[]dbInfo](t, ts.URL+"/v1/db")
	if len(dbs) != 1 || dbs[0].Name != "tiny" {
		t.Fatalf("list: %+v", dbs)
	}

	// Replacing resets the prepared cache.
	code, _ = postJSON(t, ts.URL+"/v1/db/tiny", jsonDatabase{
		Relations: []jsonRelation{{Name: "e", Arity: 2, Tuples: [][]string{{"x", "y"}}}},
	})
	if code != http.StatusOK {
		t.Fatalf("replace status %d", code)
	}
	code, body = postJSON(t, ts.URL+"/v1/query", searchRequest{DB: "tiny", Query: "R(X,Y) <- P(X,Y)", Type: 0})
	if code != http.StatusOK {
		t.Fatalf("query status %d: %s", code, body)
	}
	var resp queryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.CacheHit {
		t.Fatalf("replacing a database must discard its prepared cache")
	}
}

func TestStatsAndDebugEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.LoadDatabase("fig1", figure1DB())
	postJSON(t, ts.URL+"/v1/query", searchRequest{DB: "fig1", Query: "R(X,Y) <- P(X,Y)", Type: 0})

	st := getJSON[Stats](t, ts.URL+"/v1/stats")
	if st.Queries != 1 || len(st.Databases) != 1 || st.Databases[0].Tuples != 5 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MaxInFlight != 64 {
		t.Fatalf("defaulted MaxInFlight = %d, want 64", st.MaxInFlight)
	}

	resp, err := http.Get(ts.URL + "/debug")
	if err != nil {
		t.Fatalf("GET /debug: %v", err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"mqserve status", "queries", "fig1", "prep cache"} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/debug missing %q:\n%s", want, text)
		}
	}
}

// TestConcurrentMixedLoad exercises query/decide/stream concurrently on one
// server (run with -race): shared Engine, shared Prepared cache, shared
// admission semaphore.
func TestConcurrentMixedLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 8})
	sc := loadScenario(t, s, "gen", "t0-chain", 7)
	query := sc.MQ.String()

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var code int
			var body []byte
			var err error
			switch i % 3 {
			case 0:
				code, body, err = postJSONErr(ts.URL+"/v1/query", searchRequest{DB: "gen", Query: query, Type: int(sc.Type)})
			case 1:
				code, body, err = postJSONErr(ts.URL+"/v1/decide", decideRequest{DB: "gen", Query: query, Type: int(sc.Type), Index: "sup", Workers: i % 4})
			case 2:
				code, body, err = postJSONErr(ts.URL+"/v1/stream", searchRequest{DB: "gen", Query: query, Type: int(sc.Type)})
			}
			if err != nil {
				errs <- fmt.Sprintf("request %d: %v", i, err)
				return
			}
			// 429 is a legitimate answer under saturation; anything else
			// non-200 is a bug.
			if code != http.StatusOK && code != http.StatusTooManyRequests {
				errs <- fmt.Sprintf("request %d: status %d: %s", i, code, body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	st := s.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight not drained: %d", st.InFlight)
	}
}
