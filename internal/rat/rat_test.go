package rat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewNormalizes(t *testing.T) {
	cases := []struct {
		num, den     int64
		wantN, wantD int64
	}{
		{0, 5, 0, 1},
		{2, 4, 1, 2},
		{6, 3, 2, 1},
		{7, 7, 1, 1},
		{93, 100, 93, 100},
		{1024, 4096, 1, 4},
	}
	for _, c := range cases {
		r := New(c.num, c.den)
		if r.Num() != c.wantN || r.Den() != c.wantD {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.num, c.den, r.Num(), r.Den(), c.wantN, c.wantD)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for _, c := range []struct{ num, den int64 }{{1, 0}, {-1, 2}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.num, c.den)
				}
			}()
			New(c.num, c.den)
		}()
	}
}

func TestZeroValueIsZero(t *testing.T) {
	var r Rat
	if !r.IsZero() {
		t.Error("zero value not zero")
	}
	if r.String() != "0" {
		t.Errorf("zero value String = %q", r.String())
	}
	if r.Cmp(Zero) != 0 {
		t.Error("zero value != Zero")
	}
	if r.Num() != 0 || r.Den() != 1 {
		t.Errorf("zero value = %d/%d", r.Num(), r.Den())
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Rat
	}{
		{"1/2", New(1, 2)},
		{"3/9", New(1, 3)},
		{"0", Zero},
		{"1", One},
		{"0.75", New(3, 4)},
		{"0.93", New(93, 100)},
		{".5", New(1, 2)},
		{"2.", New(2, 1)},
		{" 1/2 ", New(1, 2)},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "a", "1/0", "-1/2", "1/-2", "-0.5", "x/y", "1/2/3"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b Rat
		want int
	}{
		{New(1, 2), New(1, 2), 0},
		{New(1, 3), New(1, 2), -1},
		{New(2, 3), New(1, 2), 1},
		{Zero, New(1, 1000000), -1},
		{One, New(999999, 1000000), 1},
		{New(93, 100), New(930, 1000), 0},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCmpLargeComponentsNoOverflow(t *testing.T) {
	// These cross-products overflow int64; Cmp must still be exact.
	big := int64(math.MaxInt64 / 2)
	a := New(big, big-1)   // slightly greater than 1
	b := New(big-1, big-2) // also slightly greater than 1, but larger
	if got := a.Cmp(b); got != -1 {
		t.Errorf("Cmp large = %d, want -1", got)
	}
	if got := b.Cmp(a); got != 1 {
		t.Errorf("Cmp large reversed = %d, want 1", got)
	}
	if got := a.Cmp(a); got != 0 {
		t.Errorf("Cmp self = %d, want 0", got)
	}
}

func TestGreaterStrict(t *testing.T) {
	// The paper's thresholds are strict: 1/2 > 1/2 must be false.
	if New(1, 2).Greater(New(1, 2)) {
		t.Error("1/2 > 1/2")
	}
	if !New(51, 100).Greater(New(1, 2)) {
		t.Error("51/100 not > 1/2")
	}
	if Zero.Greater(Zero) {
		t.Error("0 > 0")
	}
	if !New(1, 1000).Greater(Zero) {
		t.Error("1/1000 not > 0")
	}
}

func TestMaxMulSub(t *testing.T) {
	if got := Max(New(1, 3), New(1, 2)); !got.Equal(New(1, 2)) {
		t.Errorf("Max = %v", got)
	}
	if got := New(2, 3).Mul(New(3, 4)); !got.Equal(New(1, 2)) {
		t.Errorf("Mul = %v", got)
	}
	if got := New(3, 4).Sub(New(1, 4)); !got.Equal(New(1, 2)) {
		t.Errorf("Sub = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative Sub did not panic")
			}
		}()
		New(1, 4).Sub(New(1, 2))
	}()
}

func TestString(t *testing.T) {
	cases := []struct {
		r    Rat
		want string
	}{
		{Zero, "0"},
		{One, "1"},
		{New(5, 5), "1"},
		{New(1, 2), "1/2"},
		{New(7, 3), "7/3"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("String(%d/%d) = %q, want %q", c.r.Num(), c.r.Den(), got, c.want)
		}
	}
}

func TestFloat64(t *testing.T) {
	if got := New(1, 2).Float64(); got != 0.5 {
		t.Errorf("Float64 = %v", got)
	}
	if got := Zero.Float64(); got != 0 {
		t.Errorf("Float64 zero = %v", got)
	}
}

// Property: Cmp agrees with exact big-integer style comparison computed via
// float fallback on small components.
func TestQuickCmpConsistent(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		r := New(int64(a), int64(b)+1)
		s := New(int64(c), int64(d)+1)
		lhs := int64(a) * (int64(d) + 1)
		rhs := int64(c) * (int64(b) + 1)
		want := 0
		if lhs < rhs {
			want = -1
		} else if lhs > rhs {
			want = 1
		}
		return r.Cmp(s) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cmp is antisymmetric and transitive on a sample.
func TestQuickCmpOrder(t *testing.T) {
	f := func(a, b, c, d, e, g uint8) bool {
		x := New(int64(a), int64(b)+1)
		y := New(int64(c), int64(d)+1)
		z := New(int64(e), int64(g)+1)
		if x.Cmp(y) != -y.Cmp(x) {
			return false
		}
		if x.Cmp(y) <= 0 && y.Cmp(z) <= 0 && x.Cmp(z) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Parse(String(r)) round-trips.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(a, b uint16) bool {
		r := New(int64(a), int64(b)+1)
		s, err := Parse(r.String())
		return err == nil && s.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulOverflowPanics(t *testing.T) {
	big := New(int64(1)<<61, 1)
	defer func() {
		if recover() == nil {
			t.Error("Mul overflow did not panic")
		}
	}()
	big.Mul(big)
}

func TestSubOverflowGuard(t *testing.T) {
	// Components large enough that cross-multiplication overflows the
	// guarded range must panic rather than silently wrap.
	a := New(int64(1)<<62-1, int64(1)<<62-3)
	b := New(int64(1)<<61-1, int64(1)<<62-5)
	defer func() {
		recover() // either result or panic is acceptable; must not wrap
	}()
	r := a.Sub(b)
	if r.Den() <= 0 {
		t.Errorf("Sub wrapped: %v", r)
	}
}

func TestMulCrossReduction(t *testing.T) {
	// (2/3)*(3/2) = 1 exercises both cross-gcd paths.
	if got := New(2, 3).Mul(New(3, 2)); !got.Equal(One) {
		t.Errorf("Mul = %v", got)
	}
	// Multiplying by zero short-circuits.
	if got := Zero.Mul(New(7, 9)); !got.IsZero() {
		t.Errorf("0*x = %v", got)
	}
}

func TestFromInt(t *testing.T) {
	if got := FromInt(5); got.Num() != 5 || got.Den() != 1 {
		t.Errorf("FromInt = %v", got)
	}
}

func TestParseDecimalLimits(t *testing.T) {
	// Too many fractional digits must error, not overflow.
	if _, err := Parse("0.12345678901234567890123"); err == nil {
		t.Error("overlong decimal accepted")
	}
	got, err := Parse("0.000001")
	if err != nil || !got.Equal(New(1, 1000000)) {
		t.Errorf("tiny decimal = %v, %v", got, err)
	}
}

func TestMustParseAndLess(t *testing.T) {
	if got := MustParse("3/4"); !got.Equal(New(3, 4)) {
		t.Errorf("MustParse = %v", got)
	}
	if !New(1, 3).Less(New(1, 2)) || New(1, 2).Less(New(1, 3)) {
		t.Error("Less disagrees with Cmp")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParse on garbage did not panic")
		}
	}()
	MustParse("not-a-number")
}
