// Package rat implements exact non-negative rational arithmetic for
// plausibility indices and thresholds.
//
// The paper defines plausibility indices as functions into the rational
// interval [0, 1] (Definition 2.5) and thresholds as rationals 0 <= k < 1
// encoded as pairs of naturals (Lemma 3.39). Floating point would make
// strict threshold comparisons (I > k) unsound, so all index values in this
// module are exact ratios of int64 counts. Comparisons cross-multiply in
// 128-bit arithmetic via math/bits, so they never overflow.
package rat

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Rat is an exact non-negative rational number. The zero value is 0.
//
// Rat is a small value type: pass it by value. Denominators are always
// positive after normalization; a zero numerator normalizes to 0/1.
type Rat struct {
	num, den int64
}

// Zero is the rational 0.
var Zero = Rat{0, 1}

// One is the rational 1.
var One = Rat{1, 1}

// New returns the rational num/den in lowest terms.
// It panics if den == 0 or if either argument is negative: index values and
// thresholds in this module are counts, which are never negative.
func New(num, den int64) Rat {
	if den == 0 {
		panic("rat: zero denominator")
	}
	if num < 0 || den < 0 {
		panic("rat: negative component")
	}
	if num == 0 {
		return Rat{0, 1}
	}
	g := gcd(num, den)
	return Rat{num / g, den / g}
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return New(n, 1) }

// Parse parses a rational from one of the forms "a/b", "0.75", or "1".
// Decimal forms are converted exactly (e.g. "0.93" becomes 93/100).
func Parse(s string) (Rat, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Zero, fmt.Errorf("rat: empty string")
	}
	if strings.ContainsAny(s, "-+") {
		return Zero, fmt.Errorf("rat: signed rational %q not allowed", s)
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		num, err := strconv.ParseInt(s[:i], 10, 64)
		if err != nil {
			return Zero, fmt.Errorf("rat: bad numerator in %q: %v", s, err)
		}
		den, err := strconv.ParseInt(s[i+1:], 10, 64)
		if err != nil {
			return Zero, fmt.Errorf("rat: bad denominator in %q: %v", s, err)
		}
		if den == 0 {
			return Zero, fmt.Errorf("rat: zero denominator in %q", s)
		}
		if num < 0 || den < 0 {
			return Zero, fmt.Errorf("rat: negative rational %q", s)
		}
		return New(num, den), nil
	}
	if i := strings.IndexByte(s, '.'); i >= 0 {
		whole, frac := s[:i], s[i+1:]
		if whole == "" {
			whole = "0"
		}
		w, err := strconv.ParseInt(whole, 10, 64)
		if err != nil {
			return Zero, fmt.Errorf("rat: bad number %q: %v", s, err)
		}
		if frac == "" {
			return New(w, 1), nil
		}
		f, err := strconv.ParseInt(frac, 10, 64)
		if err != nil {
			return Zero, fmt.Errorf("rat: bad number %q: %v", s, err)
		}
		den := int64(1)
		for range frac {
			if den > 1<<55 {
				return Zero, fmt.Errorf("rat: too many decimal digits in %q", s)
			}
			den *= 10
		}
		if w < 0 || f < 0 {
			return Zero, fmt.Errorf("rat: negative rational %q", s)
		}
		return New(w*den+f, den), nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Zero, fmt.Errorf("rat: bad number %q: %v", s, err)
	}
	if n < 0 {
		return Zero, fmt.Errorf("rat: negative rational %q", s)
	}
	return New(n, 1), nil
}

// MustParse is like Parse but panics on error. It is intended for
// compile-time-constant thresholds in tests and examples.
func MustParse(s string) Rat {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Num returns the numerator in lowest terms.
func (r Rat) Num() int64 { return r.norm().num }

// Den returns the denominator in lowest terms (always >= 1).
func (r Rat) Den() int64 { return r.norm().den }

// norm maps the zero value {0,0} onto the canonical 0/1.
func (r Rat) norm() Rat {
	if r.den == 0 {
		return Rat{0, 1}
	}
	return r
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.norm().num == 0 }

// Float64 returns the nearest float64, for display only.
func (r Rat) Float64() float64 {
	r = r.norm()
	return float64(r.num) / float64(r.den)
}

// String formats r as "num/den", or "0" / "1" for those exact values.
func (r Rat) String() string {
	r = r.norm()
	switch {
	case r.num == 0:
		return "0"
	case r.num == r.den:
		return "1"
	default:
		return fmt.Sprintf("%d/%d", r.num, r.den)
	}
}

// Cmp compares r and s, returning -1, 0, or +1. The comparison
// cross-multiplies in 128 bits, so it is exact for all int64 components.
func (r Rat) Cmp(s Rat) int {
	r, s = r.norm(), s.norm()
	hi1, lo1 := bits.Mul64(uint64(r.num), uint64(s.den))
	hi2, lo2 := bits.Mul64(uint64(s.num), uint64(r.den))
	switch {
	case hi1 != hi2:
		if hi1 < hi2 {
			return -1
		}
		return 1
	case lo1 != lo2:
		if lo1 < lo2 {
			return -1
		}
		return 1
	}
	return 0
}

// Greater reports whether r > s. This is the strict threshold test
// "I(σ(MQ)) > k" used throughout the paper.
func (r Rat) Greater(s Rat) bool { return r.Cmp(s) > 0 }

// Less reports whether r < s.
func (r Rat) Less(s Rat) bool { return r.Cmp(s) < 0 }

// Equal reports whether r == s as rationals.
func (r Rat) Equal(s Rat) bool { return r.Cmp(s) == 0 }

// Max returns the larger of r and s.
func Max(r, s Rat) Rat {
	if r.Cmp(s) >= 0 {
		return r.norm()
	}
	return s.norm()
}

// Mul returns r*s in lowest terms. It panics on overflow, which cannot
// happen for index values (both factors in [0,1]) but guards misuse.
func (r Rat) Mul(s Rat) Rat {
	r, s = r.norm(), s.norm()
	// Reduce cross factors first to keep products small.
	g1 := gcd64(r.num, s.den)
	g2 := gcd64(s.num, r.den)
	n1, d2 := r.num/g1, s.den/g1
	n2, d1 := s.num/g2, r.den/g2
	num, okN := mul64(n1, n2)
	den, okD := mul64(d1, d2)
	if !okN || !okD {
		panic("rat: multiplication overflow")
	}
	return New(num, den)
}

// Sub returns r-s. It panics if the result would be negative.
func (r Rat) Sub(s Rat) Rat {
	r, s = r.norm(), s.norm()
	if r.Cmp(s) < 0 {
		panic("rat: negative subtraction result")
	}
	// r - s = (r.num*s.den - s.num*r.den) / (r.den*s.den)
	a, okA := mul64(r.num, s.den)
	b, okB := mul64(s.num, r.den)
	d, okD := mul64(r.den, s.den)
	if !okA || !okB || !okD {
		panic("rat: subtraction overflow")
	}
	return New(a-b, d)
}

func mul64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi != 0 || lo > uint64(1)<<62 {
		return 0, false
	}
	return int64(lo), true
}

func gcd(a, b int64) int64 { return gcd64(a, b) }

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
