package metaquery

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPublicEngineFlow exercises the session API end to end: one Engine,
// one Prepared metaquery, repeated and streamed executions.
func TestPublicEngineFlow(t *testing.T) {
	db := speaksDB()
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	eng := NewEngine(db)
	prep, err := eng.Prepare(mq, Options{
		Type:       Type0,
		Thresholds: AllAbove(MustRat("0.5"), MustRat("0.9"), MustRat("0")),
	})
	if err != nil {
		t.Fatal(err)
	}

	want, err := FindRules(db, mq, prep.Options())
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		got, err := prep.FindRules(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("run %d: %d answers, want %d", run, len(got), len(want))
		}
		for i := range got {
			if got[i].Rule.String() != want[i].Rule.String() {
				t.Errorf("run %d: answer %d differs", run, i)
			}
		}
	}

	streamed := 0
	for a, err := range prep.Stream(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if a.Rule.String() == "" {
			t.Error("streamed an empty rule")
		}
		streamed++
	}
	if streamed != len(want) {
		t.Errorf("streamed %d answers, want %d", streamed, len(want))
	}
}

// TestPublicDecideFirst exercises the first-witness decision wrappers:
// agreement with the naive decider and a valid witness on YES.
func TestPublicDecideFirst(t *testing.T) {
	db := speaksDB()
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	for _, ix := range []Index{Sup, Cnf, Cvr} {
		for _, k := range []Rat{MustRat("0"), MustRat("1")} {
			wantYes, _, err := Decide(db, mq, ix, k, Type0)
			if err != nil {
				t.Fatal(err)
			}
			yes, wit, err := DecideFirstContext(context.Background(), db, mq, ix, k, Type0)
			if err != nil {
				t.Fatal(err)
			}
			if yes != wantYes {
				t.Errorf("%s > %s: DecideFirstContext %v, Decide %v", ix, k, yes, wantYes)
			}
			if yes {
				rule, err := wit.Apply(mq)
				if err != nil {
					t.Fatalf("witness does not instantiate: %v", err)
				}
				v, err := ix.Compute(db, rule)
				if err != nil {
					t.Fatal(err)
				}
				if !v.Greater(k) {
					t.Errorf("witness %s has %s = %s, not > %s", rule, ix, v, k)
				}
			}
		}
	}
}

func TestPublicContextVariantsCancelled(t *testing.T) {
	db := speaksDB()
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := FindRulesContext(ctx, db, mq, Options{Type: Type0}); !errors.Is(err, context.Canceled) {
		t.Errorf("FindRulesContext: err = %v, want context.Canceled", err)
	}
	if _, _, err := FindRulesStatsContext(ctx, db, mq, Options{Type: Type0}); !errors.Is(err, context.Canceled) {
		t.Errorf("FindRulesStatsContext: err = %v, want context.Canceled", err)
	}
	if _, err := NaiveFindRulesContext(ctx, db, mq, Type0, Thresholds{}); !errors.Is(err, context.Canceled) {
		t.Errorf("NaiveFindRulesContext: err = %v, want context.Canceled", err)
	}
	if _, _, err := DecideContext(ctx, db, mq, Cnf, MustRat("2"), Type0); !errors.Is(err, context.Canceled) {
		t.Errorf("DecideContext: err = %v, want context.Canceled", err)
	}
	if _, _, err := DecideParallelContext(ctx, db, mq, Cnf, MustRat("2"), Type0, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("DecideParallelContext: err = %v, want context.Canceled", err)
	}
}

func TestPublicStreamEarlyExitCheapness(t *testing.T) {
	db := speaksDB()
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	eng := NewEngine(db)

	_, fullStats, err := FindRulesStats(db, mq, Options{Type: Type1})
	if err != nil {
		t.Fatal(err)
	}

	prep, err := eng.Prepare(mq, Options{Type: Type1})
	if err != nil {
		t.Fatal(err)
	}
	var early Stats
	for _, err := range prep.StreamStats(context.Background(), &early) {
		if err != nil {
			t.Fatal(err)
		}
		break
	}
	if early.HeadsTried+early.BodyCandidatesTried >= fullStats.HeadsTried+fullStats.BodyCandidatesTried {
		t.Errorf("early exit work (%d heads, %d candidates) not less than full run (%d heads, %d candidates)",
			early.HeadsTried, early.BodyCandidatesTried, fullStats.HeadsTried, fullStats.BodyCandidatesTried)
	}
}

func TestPublicEngineConcurrentUse(t *testing.T) {
	db := speaksDB()
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	eng := NewEngine(db)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			typ := InstType(g % 3)
			if _, err := eng.FindRules(context.Background(), mq, Options{Type: typ}); err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
}

func TestPublicDeadlineStopsSearch(t *testing.T) {
	// A quick sanity check at the facade level; the heavyweight promptness
	// tests live in internal/engine.
	db := speaksDB()
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := FindRulesContext(ctx, db, mq, Options{Type: Type2}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
