module github.com/mqgo/metaquery

go 1.23
