// Package metaquery is a library for metaquerying relational databases: the
// data-mining technique of Shen, Ong, Mitbander and Zaniolo in which
// second-order Horn templates ("metaqueries") with predicate variables are
// instantiated against a database to discover plausible inter-relation
// dependencies.
//
// The library is a from-scratch reproduction of
//
//	F. Angiulli, R. Ben-Eliyahu-Zohary, G. Ianni, L. Palopoli,
//	"Computational Properties of Metaquerying Problems", PODS 2000.
//
// It implements the paper's three instantiation semantics (types 0, 1 and
// 2), the plausibility indices support, confidence and cover with exact
// rational arithmetic, the acyclicity and hypertree-width machinery of
// Sections 3.4 and 4, and two answering engines: a naive reference
// enumerator and the findRules algorithm of Figure 4 (hypertree-guided
// search with semijoin full reducers and support pruning).
//
// # Quick start
//
//	db := metaquery.NewDatabase()
//	db.MustInsertNamed("citizen", "john", "italy")
//	db.MustInsertNamed("language", "italy", "italian")
//	db.MustInsertNamed("speaks", "john", "italian")
//
//	mq := metaquery.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
//	answers, err := metaquery.FindRules(db, mq, metaquery.Options{
//	    Type:       metaquery.Type2,
//	    Thresholds: metaquery.AllAbove(metaquery.MustRat("0.3"),
//	        metaquery.MustRat("0.5"), metaquery.MustRat("0")),
//	})
//
// Each answer is an ordinary Horn rule (e.g. "speaks(X,Z) <- citizen(X,Y),
// language(Y,Z)") with its exact support, confidence and cover.
//
// # Sessions, preparation and streaming
//
// Metaquerying is interactive: many queries are asked of one database, and
// the instantiation space of a single query can be exponential. The
// Engine/Prepared API (modeled on database/sql's DB/Stmt pair) amortizes
// the per-database and per-query preprocessing and keeps runaway searches
// controllable:
//
//	eng := metaquery.NewEngine(db)        // per-database indices, built once
//	prep, err := eng.Prepare(mq, opts)    // per-query analysis, done once
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	answers, err := prep.FindRules(ctx)   // full sorted answer set
//
//	for a, err := range prep.Stream(ctx) { // incremental, discovery order
//	    if err != nil { ... }              // in-band search/ctx error
//	    use(a)
//	    break // abandoning the loop abandons the remaining search
//	}
//
// Every free-function entry point (FindRules, Decide, NaiveFindRules,
// DecideParallel) remains available as a thin wrapper over a one-shot
// Engine, together with a context-aware variant (FindRulesContext,
// DecideContext, ...) that stops promptly with ctx.Err() on cancellation.
package metaquery

import (
	"context"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// Database is a finite relational database instance (D, R1, ..., Rn).
type Database = relation.Database

// Relation is a named, fixed-arity set of tuples.
type Relation = relation.Relation

// Tuple is an ordered list of interned constants.
type Tuple = relation.Tuple

// Value is an interned database constant.
type Value = relation.Value

// Atom is a predicate applied to terms, the building block of rules.
type Atom = relation.Atom

// Metaquery is a second-order Horn template T <- L1, ..., Lm.
type Metaquery = core.Metaquery

// LiteralScheme is one literal of a metaquery: a relation pattern (with a
// predicate variable) or an ordinary atom.
type LiteralScheme = core.LiteralScheme

// Rule is an ordinary Horn rule, the result of instantiating a metaquery.
type Rule = core.Rule

// Instantiation is a consistent substitution of relation patterns by atoms.
type Instantiation = core.Instantiation

// Answer is one discovered rule with its plausibility indices.
type Answer = core.Answer

// Thresholds carries strict admissibility thresholds for the indices.
type Thresholds = core.Thresholds

// InstType selects the instantiation semantics.
type InstType = core.InstType

// Instantiation types (Definitions 2.2-2.4 of the paper).
const (
	// Type0 matches patterns to same-arity relations, arguments untouched.
	Type0 = core.Type0
	// Type1 additionally allows argument permutation.
	Type1 = core.Type1
	// Type2 allows matching into wider relations with fresh padding
	// variables.
	Type2 = core.Type2
)

// Index identifies a plausibility index.
type Index = core.Index

// The plausibility indices of Definition 2.7.
const (
	// Sup is support: the largest fraction, over body relations, of tuples
	// participating in the body join.
	Sup = core.Sup
	// Cnf is confidence: the fraction of body-satisfying assignments that
	// also satisfy the head.
	Cnf = core.Cnf
	// Cvr is cover: the fraction of head tuples implied by the body.
	Cvr = core.Cvr
)

// Rat is an exact non-negative rational number; all index values and
// thresholds are Rats (never floats).
type Rat = rat.Rat

// Options configures the findRules engine.
type Options = engine.Options

// ApproxOptions configures the sampling ε–δ approximate decision path
// (Prepared.DecideApprox) through Options.Approx.
type ApproxOptions = engine.ApproxOptions

// Stats reports engine search-effort counters.
type Stats = engine.Stats

// NewDatabase returns an empty database.
func NewDatabase() *Database { return relation.NewDatabase() }

// LoadCSVDir loads every *.csv file in dir as a relation named after the
// file. See the cmd/metaquery tool for the expected layout.
func LoadCSVDir(dir string) (*Database, error) { return relation.LoadCSVDir(dir) }

// SaveCSVDir writes every relation of db as <name>.csv under dir.
func SaveCSVDir(db *Database, dir string) error { return relation.SaveCSVDir(db, dir) }

// Parse parses a metaquery from textual syntax, e.g.
// "R(X,Z) <- P(X,Y), Q(Y,Z)". Upper-case-initial predicates are predicate
// variables; lower-case or double-quoted predicates are relation names;
// "_" is a mute variable, fresh at each occurrence.
func Parse(s string) (*Metaquery, error) { return core.Parse(s) }

// MustParse is Parse panicking on error.
func MustParse(s string) *Metaquery { return core.MustParse(s) }

// NewRat returns the exact rational num/den.
func NewRat(num, den int64) Rat { return rat.New(num, den) }

// ParseRat parses "a/b", "0.75" or "1" into an exact rational.
func ParseRat(s string) (Rat, error) { return rat.Parse(s) }

// MustRat is ParseRat panicking on error.
func MustRat(s string) Rat { return rat.MustParse(s) }

// AllAbove builds thresholds requiring sup > ks, cnf > kc and cvr > kv
// (all strict, as in the paper's decision problems).
func AllAbove(ks, kc, kv Rat) Thresholds { return core.AllAbove(ks, kc, kv) }

// SingleIndex builds thresholds constraining only one index.
func SingleIndex(ix Index, k Rat) Thresholds { return core.SingleIndex(ix, k) }

// FindRules answers mq over db with the findRules algorithm (Figure 4 of
// the paper): all instantiations whose indices pass the thresholds, with
// exact index values, sorted by rule text. It is a thin wrapper over a
// one-shot Engine; see FindRulesContext for cancellation and NewEngine /
// Engine.Prepare for amortizing repeated queries.
func FindRules(db *Database, mq *Metaquery, opt Options) ([]Answer, error) {
	return FindRulesContext(context.Background(), db, mq, opt)
}

// FindRulesStats is FindRules returning the engine's search counters.
func FindRulesStats(db *Database, mq *Metaquery, opt Options) ([]Answer, *Stats, error) {
	return FindRulesStatsContext(context.Background(), db, mq, opt)
}

// NaiveFindRules answers mq by exhaustive enumeration and direct index
// evaluation: the reference implementation the engine is tested against.
func NaiveFindRules(db *Database, mq *Metaquery, typ InstType, th Thresholds) ([]Answer, error) {
	return NaiveFindRulesContext(context.Background(), db, mq, typ, th)
}

// Decide solves the decision problem ⟨DB, MQ, I, k, T⟩ of the paper: is
// there a type-T instantiation with I(σ(MQ)) > k? It returns a witness
// instantiation on YES.
func Decide(db *Database, mq *Metaquery, ix Index, k Rat, typ InstType) (bool, *Instantiation, error) {
	return DecideContext(context.Background(), db, mq, ix, k, typ)
}

// Top returns the k highest-ranked answers by the given index (descending,
// deterministic tie-breaking); k <= 0 returns all, ranked.
func Top(answers []Answer, by Index, k int) []Answer {
	return engine.TopAnswers(answers, by, k)
}

// DecideParallel is Decide with worker goroutines partitioning the
// instantiation space (see the paper's Section 5 parallelizability remark);
// workers <= 0 selects GOMAXPROCS.
func DecideParallel(db *Database, mq *Metaquery, ix Index, k Rat, typ InstType, workers int) (bool, *Instantiation, error) {
	return DecideParallelContext(context.Background(), db, mq, ix, k, typ, workers)
}

// Support computes sup(r) over db (Definition 2.7).
func Support(db *Database, r Rule) (Rat, error) { return core.Support(db, r) }

// Confidence computes cnf(r) over db (Definition 2.7).
func Confidence(db *Database, r Rule) (Rat, error) { return core.Confidence(db, r) }

// Cover computes cvr(r) over db (Definition 2.7).
func Cover(db *Database, r Rule) (Rat, error) { return core.Cover(db, r) }
