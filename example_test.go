package metaquery_test

import (
	"fmt"

	"github.com/mqgo/metaquery"
)

// ExampleFindRules mines the paper's introductory rule (2).
func ExampleFindRules() {
	db := metaquery.NewDatabase()
	db.MustInsertNamed("citizen", "john", "italy")
	db.MustInsertNamed("citizen", "maria", "italy")
	db.MustInsertNamed("language", "italy", "italian")
	db.MustInsertNamed("speaks", "john", "italian")
	db.MustInsertNamed("speaks", "maria", "italian")

	mq := metaquery.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	answers, err := metaquery.FindRules(db, mq, metaquery.Options{
		Type: metaquery.Type0,
		Thresholds: metaquery.AllAbove(
			metaquery.MustRat("1/2"), metaquery.MustRat("0.9"), metaquery.MustRat("0.9")),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, a := range answers {
		fmt.Printf("%s cnf=%v\n", a.Rule, a.Cnf)
	}
	// Output:
	// speaks(X,Z) <- citizen(X,Y), language(Y,Z) cnf=1
}

// ExampleParse shows the textual metaquery syntax.
func ExampleParse() {
	mq, err := metaquery.Parse(`"UsPT"(X,Z) <- P(X,Y), Q(Y,Z)`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(mq)
	fmt.Println("pure:", mq.IsPure(), "acyclic:", mq.IsAcyclic())
	// Output:
	// "UsPT"(X,Z) <- P(X,Y), Q(Y,Z)
	// pure: true acyclic: false
}

// ExampleDecide solves one of the paper's decision problems
// ⟨DB, MQ, I, k, T⟩ and inspects the witness.
func ExampleDecide() {
	db := metaquery.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("q", "b", "c")
	db.MustInsertNamed("r", "a", "c")

	mq := metaquery.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	yes, witness, err := metaquery.Decide(db, mq, metaquery.Cnf, metaquery.MustRat("1/2"), metaquery.Type0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("decidable above 1/2:", yes)
	rule, _ := witness.Apply(mq)
	fmt.Println("witness:", rule)
	// Output:
	// decidable above 1/2: true
	// witness: r(X,Z) <- p(X,Y), q(Y,Z)
}

// ExampleSupport evaluates the indices of a hand-built rule.
func ExampleSupport() {
	db := metaquery.NewDatabase()
	db.MustInsertNamed("buys", "ann", "bread")
	db.MustInsertNamed("buys", "bob", "bread")
	db.MustInsertNamed("likes", "ann", "bread")

	mq := metaquery.MustParse("L(X,Y) <- B(X,Y)")
	answers, _ := metaquery.FindRules(db, mq, metaquery.Options{Type: metaquery.Type0})
	for _, a := range answers {
		if a.Rule.String() == "likes(X,Y) <- buys(X,Y)" {
			fmt.Printf("sup=%v cnf=%v cvr=%v\n", a.Sup, a.Cnf, a.Cvr)
		}
	}
	// Output:
	// sup=1 cnf=1/2 cvr=1
}
