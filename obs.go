package metaquery

import (
	"context"

	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/obs"
)

// This file re-exports the observability layer: execution tracing
// (span trees of epoch binding, node joins with estimate-vs-actual row
// counts, parallel worker chunks, approx sampling) and the engine's
// lock-free execution histograms.
//
//	tr := metaquery.NewTracer()
//	answers, _, err := prep.FindRulesStats(metaquery.WithTracer(ctx, tr))
//	fmt.Print(metaquery.RenderTree(tr.Tree()))
//
// A Tracer can alternatively be fixed for every execution of a Prepared
// through Options.Tracer. The nil default is the zero-allocation disabled
// tracer: untraced runs pay a nil check per instrumentation site.

// Tracer records an execution's span tree. Safe for concurrent use; nil is
// the disabled tracer.
type Tracer = obs.Tracer

// SpanTree is one node of a reconstructed trace (Tracer.Tree), with
// microsecond offsets and string attributes.
type SpanTree = obs.SpanTree

// Histogram is a lock-free log-bucketed histogram with mergeable
// snapshots and quantile estimates (each within 25% of the true order
// statistic).
type Histogram = obs.Histogram

// EngineMetrics are an Engine's cumulative execution histograms
// (Engine.EnableMetrics / Engine.Metrics): node-join wall time and
// planner estimate-vs-actual row ratios.
type EngineMetrics = engine.Metrics

// NewTracer returns an enabled tracer with the default span cap.
func NewTracer() *Tracer { return obs.NewTracer() }

// WithTracer attaches a tracer to ctx: executions under this context
// record their spans into it without re-preparing (the alternative to
// Options.Tracer for per-run tracing on a shared Prepared).
func WithTracer(ctx context.Context, tr *Tracer) context.Context { return obs.WithTracer(ctx, tr) }

// RenderTree renders a span forest as indented text, one span per line.
func RenderTree(roots []*SpanTree) string { return obs.RenderTree(roots) }
