// Schema discovery: the introduction notes that metaqueries "can be
// automatically generated from the database schema". This example generates
// every pure chain metaquery shape up to a given body length, runs each
// against a database, and reports the strongest discovered rules — a
// miniature version of the automated discovery loop of Leng and Shen.
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/mqgo/metaquery"
)

// generateChainMetaqueries emits R(X0,Xm) <- P1(X0,X1), ..., Pm(Xm-1,Xm)
// for m = 1..maxLen, plus the symmetric variant with a shared endpoint
// head R(X0,X1).
func generateChainMetaqueries(maxLen int) []*metaquery.Metaquery {
	var out []*metaquery.Metaquery
	for m := 1; m <= maxLen; m++ {
		body := ""
		for i := 0; i < m; i++ {
			if i > 0 {
				body += ", "
			}
			body += fmt.Sprintf("P%d(X%d,X%d)", i+1, i, i+1)
		}
		out = append(out,
			metaquery.MustParse(fmt.Sprintf("R(X0,X%d) <- %s", m, body)))
	}
	return out
}

func main() {
	// A genealogy-flavoured database with a derivable "grandparent".
	db := metaquery.NewDatabase()
	rows := [][3]string{
		{"parent", "ada", "bob"},
		{"parent", "bob", "cid"},
		{"parent", "bob", "dee"},
		{"parent", "eva", "fay"},
		{"parent", "fay", "gus"},
		{"grandparent", "ada", "cid"},
		{"grandparent", "ada", "dee"},
		{"grandparent", "eva", "gus"},
		{"sibling", "cid", "dee"},
	}
	for _, r := range rows {
		db.MustInsertNamed(r[0], r[1], r[2])
	}

	type hit struct {
		rule string
		cnf  metaquery.Rat
		cvr  metaquery.Rat
	}
	var hits []hit
	for _, mq := range generateChainMetaqueries(3) {
		answers, err := metaquery.FindRules(db, mq, metaquery.Options{
			Type: metaquery.Type0,
			Thresholds: metaquery.AllAbove(
				metaquery.MustRat("0"), metaquery.MustRat("3/4"), metaquery.MustRat("3/4")),
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range answers {
			// Skip rules whose head relation also appears in the body
			// (tautological chains like parent <- parent).
			self := false
			for _, b := range a.Rule.Body {
				if b.Pred == a.Rule.Head.Pred {
					self = true
				}
			}
			if !self {
				hits = append(hits, hit{a.Rule.String(), a.Cnf, a.Cvr})
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].rule < hits[j].rule })

	fmt.Println("auto-generated chain metaqueries up to length 3;")
	fmt.Println("rules with cnf > 3/4 and cvr > 3/4, head not in body:")
	for _, h := range hits {
		fmt.Printf("  %-60s cnf=%v cvr=%v\n", h.rule, h.cnf, h.cvr)
	}
}
