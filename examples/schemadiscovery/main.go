// Schema discovery: the introduction notes that metaqueries "can be
// automatically generated from the database schema". This example generates
// every pure chain metaquery shape up to a given body length, runs each
// against a database, and reports the strongest discovered rules — a
// miniature version of the automated discovery loop of Leng and Shen.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/mqgo/metaquery"
)

// generateChainMetaqueries emits R(X0,Xm) <- P1(X0,X1), ..., Pm(Xm-1,Xm)
// for m = 1..maxLen, plus the symmetric variant with a shared endpoint
// head R(X0,X1).
func generateChainMetaqueries(maxLen int) []*metaquery.Metaquery {
	var out []*metaquery.Metaquery
	for m := 1; m <= maxLen; m++ {
		body := ""
		for i := 0; i < m; i++ {
			if i > 0 {
				body += ", "
			}
			body += fmt.Sprintf("P%d(X%d,X%d)", i+1, i, i+1)
		}
		out = append(out,
			metaquery.MustParse(fmt.Sprintf("R(X0,X%d) <- %s", m, body)))
	}
	return out
}

func main() {
	// A genealogy-flavoured database with a derivable "grandparent".
	db := metaquery.NewDatabase()
	rows := [][3]string{
		{"parent", "ada", "bob"},
		{"parent", "bob", "cid"},
		{"parent", "bob", "dee"},
		{"parent", "eva", "fay"},
		{"parent", "fay", "gus"},
		{"grandparent", "ada", "cid"},
		{"grandparent", "ada", "dee"},
		{"grandparent", "eva", "gus"},
		{"sibling", "cid", "dee"},
	}
	for _, r := range rows {
		db.MustInsertNamed(r[0], r[1], r[2])
	}

	// The discovery loop runs many generated metaqueries against one
	// database: exactly the access pattern the Engine session amortizes
	// (relation and candidate indices are built once, and every prepared
	// query shares them). The whole sweep is time-bounded by the context —
	// generated metaquery sets can explode combinatorially.
	eng := metaquery.NewEngine(db)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	type hit struct {
		rule string
		cnf  metaquery.Rat
		cvr  metaquery.Rat
	}
	var hits []hit
	timedOut := false
	for _, mq := range generateChainMetaqueries(3) {
		prep, err := eng.Prepare(mq, metaquery.Options{
			Type: metaquery.Type0,
			Thresholds: metaquery.AllAbove(
				metaquery.MustRat("0"), metaquery.MustRat("3/4"), metaquery.MustRat("3/4")),
		})
		if err != nil {
			log.Fatal(err)
		}
		answers, err := prep.FindRules(ctx)
		if errors.Is(err, context.DeadlineExceeded) {
			// Keep what earlier metaqueries discovered: the sweep is
			// time-bounded, not all-or-nothing.
			timedOut = true
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range answers {
			// Skip rules whose head relation also appears in the body
			// (tautological chains like parent <- parent).
			self := false
			for _, b := range a.Rule.Body {
				if b.Pred == a.Rule.Head.Pred {
					self = true
				}
			}
			if !self {
				hits = append(hits, hit{a.Rule.String(), a.Cnf, a.Cvr})
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].rule < hits[j].rule })

	if timedOut {
		fmt.Println("(sweep deadline reached; results below are partial)")
	}
	fmt.Println("auto-generated chain metaqueries up to length 3;")
	fmt.Println("rules with cnf > 3/4 and cvr > 3/4, head not in body:")
	for _, h := range hits {
		fmt.Printf("  %-60s cnf=%v cvr=%v\n", h.rule, h.cnf, h.cvr)
	}
}
