// Telecom: the paper's Figure 1 / Figure 2 walk-through. Runs the running
// metaquery (4) over the DB1 telecom database under all three instantiation
// semantics and shows how type-1 permutations and type-2 padding widen the
// answer space — including the exact examples of Section 2.1.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/mqgo/metaquery"
	"github.com/mqgo/metaquery/internal/workload"
)

func main() {
	ctx := context.Background()
	mq := metaquery.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	thresholds := metaquery.AllAbove(
		metaquery.MustRat("1/2"), metaquery.MustRat("1/2"), metaquery.MustRat("1/2"))

	fmt.Println("== Figure 1 database (UsCa, CaTe, UsPT) ==")
	// One Engine per database: the relation and candidate indices are
	// built once and shared by both instantiation-type runs below.
	eng := metaquery.NewEngine(workload.DB1())
	for _, typ := range []metaquery.InstType{metaquery.Type0, metaquery.Type1} {
		answers, err := eng.FindRules(ctx, mq, metaquery.Options{Type: typ, Thresholds: thresholds})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s instantiations, thresholds sup,cnf,cvr > 1/2: %d answers\n", typ, len(answers))
		for _, a := range answers {
			fmt.Printf("  %-55s sup=%v cnf=%v cvr=%v\n", a.Rule, a.Sup, a.Cnf, a.Cvr)
		}
	}

	fmt.Println("\n== Figure 2 database (UsPT gains a Model column) ==")
	extEng := metaquery.NewEngine(workload.DB1Extended())
	answers, err := extEng.FindRules(ctx, mq, metaquery.Options{Type: metaquery.Type2, Thresholds: thresholds})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntype-2 instantiations against the ternary UsPT: %d answers\n", len(answers))
	for _, a := range answers {
		fmt.Printf("  %-65s sup=%v cnf=%v cvr=%v\n", a.Rule, a.Sup, a.Cnf, a.Cvr)
	}
	fmt.Println("\nnote: heads like UsPT(X,Z,_f0_2) show the paper's fresh padding variable")
}
