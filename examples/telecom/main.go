// Telecom: the paper's Figure 1 / Figure 2 walk-through. Runs the running
// metaquery (4) over the DB1 telecom database under all three instantiation
// semantics and shows how type-1 permutations and type-2 padding widen the
// answer space — including the exact examples of Section 2.1.
package main

import (
	"fmt"
	"log"

	"github.com/mqgo/metaquery"
	"github.com/mqgo/metaquery/internal/workload"
)

func main() {
	mq := metaquery.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")

	fmt.Println("== Figure 1 database (UsCa, CaTe, UsPT) ==")
	db := workload.DB1()
	for _, typ := range []metaquery.InstType{metaquery.Type0, metaquery.Type1} {
		answers, err := metaquery.FindRules(db, mq, metaquery.Options{
			Type: typ,
			Thresholds: metaquery.AllAbove(
				metaquery.MustRat("1/2"), metaquery.MustRat("1/2"), metaquery.MustRat("1/2")),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s instantiations, thresholds sup,cnf,cvr > 1/2: %d answers\n", typ, len(answers))
		for _, a := range answers {
			fmt.Printf("  %-55s sup=%v cnf=%v cvr=%v\n", a.Rule, a.Sup, a.Cnf, a.Cvr)
		}
	}

	fmt.Println("\n== Figure 2 database (UsPT gains a Model column) ==")
	ext := workload.DB1Extended()
	answers, err := metaquery.FindRules(ext, mq, metaquery.Options{
		Type: metaquery.Type2,
		Thresholds: metaquery.AllAbove(
			metaquery.MustRat("1/2"), metaquery.MustRat("1/2"), metaquery.MustRat("1/2")),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntype-2 instantiations against the ternary UsPT: %d answers\n", len(answers))
	for _, a := range answers {
		fmt.Printf("  %-65s sup=%v cnf=%v cvr=%v\n", a.Rule, a.Sup, a.Cnf, a.Cvr)
	}
	fmt.Println("\nnote: heads like UsPT(X,Z,_f0_2) show the paper's fresh padding variable")
}
