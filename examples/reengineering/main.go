// Reengineering: the Section 2.2 use case for the cover index. In a legacy
// schema, some materialized tables may be redundant — derivable as views of
// other tables. A rule with cover 1 whose head is table T says every tuple
// of T (projected on the shared attributes) is implied by the body: T is a
// candidate for replacement by a view.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/mqgo/metaquery"
)

func main() {
	// A small ERP-ish schema. "shipTo" duplicates information derivable
	// from orders and customers; "priority" is genuinely independent.
	db := metaquery.NewDatabase()
	rows := [][]string{
		{"orders", "o1", "acme"},
		{"orders", "o2", "acme"},
		{"orders", "o3", "globex"},
		{"customers", "acme", "rome"},
		{"customers", "globex", "paris"},
		// shipTo(order, city): exactly the join of orders and customers.
		{"shipTo", "o1", "rome"},
		{"shipTo", "o2", "rome"},
		{"shipTo", "o3", "paris"},
		// priority(order, level): not derivable.
		{"priority", "o1", "high"},
		{"priority", "o2", "low"},
		{"priority", "o3", "high"},
	}
	for _, r := range rows {
		db.MustInsertNamed(r[0], r[1:]...)
	}

	// Is any table a join view of two others? Cover 1 (i.e. > 99/100 with
	// strict thresholds) flags full derivability; confidence says how much
	// of the candidate view is correct.
	mq := metaquery.MustParse("T(X,Z) <- A(X,Y), B(Y,Z)")
	prep, err := metaquery.NewEngine(db).Prepare(mq, metaquery.Options{
		Type:       metaquery.Type0,
		Thresholds: metaquery.SingleIndex(metaquery.Cvr, metaquery.MustRat("99/100")),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream the answers as the search discovers them: for an audit over a
	// large legacy schema the first findings appear immediately, and
	// breaking out of the loop would abandon the remaining search.
	fmt.Println("tables fully implied by a join of two others (cover = 1):")
	for a, err := range prep.Stream(context.Background()) {
		if err != nil {
			log.Fatal(err)
		}
		if a.Rule.Head.Pred == a.Rule.Body[0].Pred || a.Rule.Head.Pred == a.Rule.Body[1].Pred {
			continue // skip self-referential trivia
		}
		verdict := "partial view (some body join tuples are not in the table)"
		if a.Cnf.Equal(metaquery.MustRat("1")) {
			verdict = "exact view: table can be dropped and recomputed"
		}
		fmt.Printf("  %-50s cvr=%v cnf=%v -> %s\n", a.Rule, a.Cvr, a.Cnf, verdict)
	}
}
