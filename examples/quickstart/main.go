// Quickstart: discover the paper's introductory rule
//
//	speaks(X,Z) <- citizen(X,Y), language(Y,Z)
//
// from a small database using the transitive metaquery
// R(X,Z) <- P(X,Y), Q(Y,Z), and print every answer with its plausibility
// indices.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/mqgo/metaquery"
)

func main() {
	// Build a database: who is a citizen of which country, which country
	// speaks which language, and who speaks what.
	db := metaquery.NewDatabase()
	rows := [][3]string{
		{"citizen", "john", "italy"},
		{"citizen", "maria", "italy"},
		{"citizen", "pierre", "france"},
		{"citizen", "sofia", "spain"},
		{"language", "italy", "italian"},
		{"language", "france", "french"},
		{"language", "spain", "spanish"},
		{"speaks", "john", "italian"},
		{"speaks", "maria", "italian"},
		{"speaks", "pierre", "french"},
		{"speaks", "sofia", "spanish"},
		{"speaks", "sofia", "italian"}, // sofia also speaks Italian
	}
	for _, r := range rows {
		db.MustInsertNamed(r[0], r[1], r[2])
	}

	// The metaquery: second-order variables R, P, Q range over relations.
	mq := metaquery.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	fmt.Println("metaquery:", mq)

	// An Engine is a reusable session bound to the database: it builds the
	// relation and candidate indices once and shares them across queries.
	eng := metaquery.NewEngine(db)

	// Prepare analyzes the metaquery once (validation, hypertree
	// decomposition); the Prepared can then be executed many times.
	// Ask for rules with confidence > 0.9 and support > 0.5 (strict).
	prep, err := eng.Prepare(mq, metaquery.Options{
		Type: metaquery.Type0,
		Thresholds: metaquery.AllAbove(
			metaquery.MustRat("0.5"), // support
			metaquery.MustRat("0.9"), // confidence
			metaquery.MustRat("0"),   // cover
		),
	})
	if err != nil {
		log.Fatal(err)
	}
	answers, err := prep.FindRules(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d rule(s) with sup > 1/2 and cnf > 9/10:\n", len(answers))
	for _, a := range answers {
		fmt.Printf("  %-55s sup=%v cnf=%v cvr=%v\n", a.Rule, a.Sup, a.Cnf, a.Cvr)
	}
}
