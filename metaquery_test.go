package metaquery

import (
	"testing"
)

// speaksDB is the introduction's example: citizenship and language tables
// implying a speaks relation (rule (2) of the paper).
func speaksDB() *Database {
	db := NewDatabase()
	db.MustInsertNamed("citizen", "john", "italy")
	db.MustInsertNamed("citizen", "maria", "italy")
	db.MustInsertNamed("citizen", "pierre", "france")
	db.MustInsertNamed("language", "italy", "italian")
	db.MustInsertNamed("language", "france", "french")
	db.MustInsertNamed("speaks", "john", "italian")
	db.MustInsertNamed("speaks", "maria", "italian")
	db.MustInsertNamed("speaks", "pierre", "french")
	return db
}

func TestPublicQuickstartFlow(t *testing.T) {
	db := speaksDB()
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	answers, err := FindRules(db, mq, Options{
		Type:       Type0,
		Thresholds: AllAbove(MustRat("0.5"), MustRat("0.9"), MustRat("0.9")),
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range answers {
		if a.Rule.String() == "speaks(X,Z) <- citizen(X,Y), language(Y,Z)" {
			found = true
			if !a.Cnf.Equal(MustRat("1")) {
				t.Errorf("cnf = %v, want 1", a.Cnf)
			}
		}
	}
	if !found {
		t.Fatalf("rule (2) of the paper not discovered; answers: %v", len(answers))
	}
}

func TestPublicDecide(t *testing.T) {
	db := speaksDB()
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	yes, witness, err := Decide(db, mq, Cnf, MustRat("0.99"), Type0)
	if err != nil {
		t.Fatal(err)
	}
	if !yes || witness == nil {
		t.Fatal("expected YES with witness")
	}
	rule, err := witness.Apply(mq)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Confidence(db, rule)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Greater(MustRat("0.99")) {
		t.Errorf("witness confidence %v", v)
	}
}

func TestPublicNaiveMatchesEngine(t *testing.T) {
	db := speaksDB()
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	th := SingleIndex(Cvr, MustRat("1/2"))
	fast, err := FindRules(db, mq, Options{Type: Type1, Thresholds: th})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NaiveFindRules(db, mq, Type1, th)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(slow) {
		t.Fatalf("engine %d answers, naive %d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i].Rule.String() != slow[i].Rule.String() {
			t.Errorf("answer %d differs", i)
		}
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := speaksDB()
	if err := SaveCSVDir(db, dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != db.Size() {
		t.Errorf("round trip size %d != %d", back.Size(), db.Size())
	}
}

func TestPublicIndexHelpers(t *testing.T) {
	db := speaksDB()
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	answers, err := FindRules(db, mq, Options{Type: Type0})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range answers {
		s, err := Support(db, a.Rule)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Equal(a.Sup) {
			t.Errorf("support mismatch for %s", a.Rule)
		}
	}
}

func TestPublicStats(t *testing.T) {
	db := speaksDB()
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	_, stats, err := FindRulesStats(db, mq, Options{Type: Type0, Thresholds: SingleIndex(Sup, MustRat("0.99"))})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Width != 1 || stats.BodyCandidatesTried == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRatHelpers(t *testing.T) {
	if !NewRat(2, 4).Equal(MustRat("0.5")) {
		t.Error("rat helpers disagree")
	}
	if _, err := ParseRat("bogus"); err == nil {
		t.Error("bad rat accepted")
	}
}
