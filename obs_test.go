package metaquery

import (
	"context"
	"strings"
	"testing"
)

// TestPublicTracing exercises the observability facade end to end: a
// public-API tracer attached via WithTracer records a run's span tree,
// RenderTree renders it, and the engine's execution histograms are
// reachable through the EngineMetrics alias.
func TestPublicTracing(t *testing.T) {
	db := speaksDB()
	eng := NewEngine(db)
	var m *EngineMetrics = eng.EnableMetrics()
	prep, err := eng.Prepare(MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)"), Options{Type: Type0})
	if err != nil {
		t.Fatal(err)
	}

	tr := NewTracer()
	if _, err := prep.FindRules(WithTracer(context.Background(), tr)); err != nil {
		t.Fatal(err)
	}
	roots := tr.Tree()
	if len(roots) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	rendered := RenderTree(roots)
	for _, want := range []string{"findrules", "node-join", "est_rows="} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("rendered trace missing %q:\n%s", want, rendered)
		}
	}
	if m.NodeJoin.Count() == 0 {
		t.Fatal("NodeJoin histogram empty after a traced run")
	}
	if s := m.NodeJoin.QuantileSeconds(0.5); s <= 0 {
		t.Fatalf("p50 node-join wall = %v, want > 0", s)
	}

	// An untraced run on the same Prepared records nothing new.
	before := len(tr.Tree())
	if _, err := prep.FindRules(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Tree()); got != before {
		t.Fatalf("untraced run grew the trace: %d -> %d roots", before, got)
	}
}
