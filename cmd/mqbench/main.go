// Command mqbench runs the paper-reproduction experiment harness: one
// experiment per artifact of the paper (worked examples, Figure 5
// complexity rows, Section 4 algorithm bounds), printing each result as a
// table with a PASS/FAIL reproduction verdict. EXPERIMENTS.md records the
// outputs of a full run.
//
// Usage:
//
//	mqbench               # run all experiments
//	mqbench -exp E4       # run one experiment
//	mqbench -quick        # smaller instances (CI-speed)
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mqgo/metaquery/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID (e.g. E4); empty = all")
		quick = flag.Bool("quick", false, "use smaller instances")
	)
	flag.Parse()
	if err := run(*exp, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "mqbench:", err)
		os.Exit(1)
	}
}

func run(exp string, quick bool) error {
	ids := experiments.IDs()
	if exp != "" {
		ids = []string{exp}
	}
	failed := 0
	for _, id := range ids {
		res, err := experiments.Run(id, quick)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(res)
		if !res.Pass {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	fmt.Printf("all %d experiments passed\n", len(ids))
	return nil
}
