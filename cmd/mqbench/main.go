// Command mqbench runs the paper-reproduction experiment harness: one
// experiment per artifact of the paper (worked examples, Figure 5
// complexity rows, Section 4 algorithm bounds), printing each result as a
// table with a PASS/FAIL reproduction verdict. EXPERIMENTS.md records the
// outputs of a full run.
//
// Usage:
//
//	mqbench               # run all experiments
//	mqbench -exp E4       # run one experiment
//	mqbench -quick        # smaller instances (CI-speed)
//	mqbench -timeout 30s  # bound the whole suite's wall-clock
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/mqgo/metaquery/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID (e.g. E4); empty = all")
		quick   = flag.Bool("quick", false, "use smaller instances")
		timeout = flag.Duration("timeout", 0, "bound the suite wall-clock, e.g. 30s (0 = none)")
	)
	flag.Parse()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := runCtx(ctx, *exp, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "mqbench:", err)
		os.Exit(1)
	}
}

// run executes without a time bound; runCtx is the full CLI entry point.
func run(exp string, quick bool) error {
	return runCtx(context.Background(), exp, quick)
}

func runCtx(ctx context.Context, exp string, quick bool) error {
	ids := experiments.IDs()
	if exp != "" {
		ids = []string{exp}
	}
	failed := 0
	for _, id := range ids {
		res, err := experiments.RunContext(ctx, id, quick)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(res)
		if !res.Pass {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	fmt.Printf("all %d experiments passed\n", len(ids))
	return nil
}
