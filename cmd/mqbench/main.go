// Command mqbench runs the paper-reproduction experiment harness: one
// experiment per artifact of the paper (worked examples, Figure 5
// complexity rows, Section 4 algorithm bounds), printing each result as a
// table with a PASS/FAIL reproduction verdict. EXPERIMENTS.md records the
// outputs of a full run.
//
// Usage:
//
//	mqbench                    # run all experiments
//	mqbench -exp E4            # run one experiment
//	mqbench -quick             # smaller instances (CI-speed)
//	mqbench -timeout 30s       # bound the whole suite's wall-clock
//	mqbench -json              # machine-readable per-experiment records on stdout
//	mqbench -bench-out FILE    # additionally write the JSON records to FILE
//
// Server replay mode: -serve runs only the mqserve replay benchmark
// (experiment E23), optionally against a live server:
//
//	mqbench -serve                          # in-process server, default QPS
//	mqbench -serve -serve-url URL -qps 500  # replay against a live mqserve
//	mqbench -serve -requests 1000           # longer workload
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/mqgo/metaquery/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID (e.g. E4); empty = all")
		quick    = flag.Bool("quick", false, "use smaller instances")
		timeout  = flag.Duration("timeout", 0, "bound the suite wall-clock, e.g. 30s (0 = none)")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON records instead of tables")
		benchOut = flag.String("bench-out", "", "write the JSON records to FILE (independent of -json)")
		serve    = flag.Bool("serve", false, "run only the mqserve replay benchmark (E23)")
		serveURL = flag.String("serve-url", "", "with -serve: replay against this live server instead of in-process")
		qps      = flag.Float64("qps", 0, "with -serve: paced request rate (0 = default)")
		requests = flag.Int("requests", 0, "with -serve: total request count (0 = default)")
	)
	flag.Parse()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var err error
	if *serve {
		err = runServe(ctx, *quick, *jsonOut, *benchOut, experiments.ServeOptions{
			URL: *serveURL, QPS: *qps, Requests: *requests,
		})
	} else {
		err = runCtx(ctx, *exp, *quick, *jsonOut, *benchOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mqbench:", err)
		os.Exit(1)
	}
}

// runServe is the -serve entry point: one replay benchmark, recorded in
// the same benchRecord format the experiment suite emits so serve runs
// land in BENCH_*.json files unchanged.
func runServe(ctx context.Context, quick, jsonOut bool, benchOut string, opts experiments.ServeOptions) error {
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := experiments.RunServe(ctx, quick, opts)
	wall := time.Since(start)
	if err != nil {
		return err
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	rec := benchRecord{
		Name:       res.ID,
		Title:      res.Title,
		Pass:       res.Pass,
		WallMS:     float64(wall.Microseconds()) / 1e3,
		Allocs:     after.Mallocs - before.Mallocs,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		Header:     res.Header,
		Rows:       res.Rows,
		Notes:      res.Notes,
	}
	blob, err := json.MarshalIndent([]benchRecord{rec}, "", "  ")
	if err != nil {
		return err
	}
	if jsonOut {
		fmt.Println(string(blob))
	} else {
		fmt.Println(res)
	}
	if benchOut != "" {
		if err := os.WriteFile(benchOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	if !res.Pass {
		return fmt.Errorf("serve replay failed")
	}
	return nil
}

// benchRecord is the machine-readable per-experiment record emitted by
// -json / -bench-out, the unit of the repo's recorded perf trajectory
// (BENCH_*.json): what ran, whether it reproduced, how long it took, and
// how allocation-heavy it was.
type benchRecord struct {
	Name       string     `json:"name"`
	Title      string     `json:"title"`
	Pass       bool       `json:"pass"`
	WallMS     float64    `json:"wall_ms"`
	Allocs     uint64     `json:"allocs"`
	AllocBytes uint64     `json:"alloc_bytes"`
	Header     []string   `json:"header,omitempty"`
	Rows       [][]string `json:"rows,omitempty"`
	Notes      []string   `json:"notes,omitempty"`
}

// run executes without a time bound; runCtx is the full CLI entry point.
func run(exp string, quick bool) error {
	return runCtx(context.Background(), exp, quick, false, "")
}

func runCtx(ctx context.Context, exp string, quick, jsonOut bool, benchOut string) error {
	ids := experiments.IDs()
	if exp != "" {
		ids = []string{exp}
	}
	record := jsonOut || benchOut != ""
	records := make([]benchRecord, 0, len(ids))
	// Records accumulated before a mid-suite error (e.g. the -timeout
	// deadline firing) are still flushed: the perf trajectory of the
	// experiments that did finish is exactly what -bench-out is for.
	flush := func() error {
		if !record || len(records) == 0 {
			// Never clobber a previously recorded trajectory file with an
			// empty list (e.g. a typo'd -exp ID erroring before any record).
			return nil
		}
		blob, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return err
		}
		if jsonOut {
			fmt.Println(string(blob))
		}
		if benchOut != "" {
			if err := os.WriteFile(benchOut, append(blob, '\n'), 0o644); err != nil {
				return err
			}
		}
		return nil
	}
	failed := 0
	for _, id := range ids {
		var before runtime.MemStats
		if record {
			runtime.ReadMemStats(&before)
		}
		start := time.Now()
		res, err := experiments.RunContext(ctx, id, quick)
		wall := time.Since(start)
		if err != nil {
			if ferr := flush(); ferr != nil {
				return fmt.Errorf("%s: %w (flushing records: %v)", id, err, ferr)
			}
			return fmt.Errorf("%s: %w", id, err)
		}
		if record {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			records = append(records, benchRecord{
				Name:       res.ID,
				Title:      res.Title,
				Pass:       res.Pass,
				WallMS:     float64(wall.Microseconds()) / 1e3,
				Allocs:     after.Mallocs - before.Mallocs,
				AllocBytes: after.TotalAlloc - before.TotalAlloc,
				Header:     res.Header,
				Rows:       res.Rows,
				Notes:      res.Notes,
			})
		}
		if !jsonOut {
			fmt.Println(res)
		}
		if !res.Pass {
			failed++
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	if !jsonOut {
		fmt.Printf("all %d experiments passed\n", len(ids))
	}
	return nil
}
