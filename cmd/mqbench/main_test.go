package main

import "testing"

func TestRunSingleExperimentQuick(t *testing.T) {
	if err := run("E1", true); err != nil {
		t.Fatalf("E1 quick: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("E999", true); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExampleExperiments(t *testing.T) {
	// The cheap example-reproduction experiments; the full sweep runs in
	// the experiments package tests and via the CLI.
	for _, id := range []string{"E2", "E3", "E15", "E16", "E19"} {
		if err := run(id, true); err != nil {
			t.Errorf("%s quick: %v", id, err)
		}
	}
}
