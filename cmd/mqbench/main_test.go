package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperimentQuick(t *testing.T) {
	if err := run("E1", true); err != nil {
		t.Fatalf("E1 quick: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("E999", true); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBenchOutWritesRecords(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := runCtx(context.Background(), "E1", true, false, out); err != nil {
		t.Fatalf("runCtx with -bench-out: %v", err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading bench-out file: %v", err)
	}
	var records []benchRecord
	if err := json.Unmarshal(blob, &records); err != nil {
		t.Fatalf("bench-out is not valid JSON: %v", err)
	}
	if len(records) != 1 {
		t.Fatalf("got %d records, want 1", len(records))
	}
	r := records[0]
	if r.Name != "E1" || !r.Pass || r.WallMS <= 0 || r.Allocs == 0 {
		t.Errorf("record fields unpopulated: %+v", r)
	}
}

func TestRunExampleExperiments(t *testing.T) {
	// The cheap example-reproduction experiments; the full sweep runs in
	// the experiments package tests and via the CLI.
	for _, id := range []string{"E2", "E3", "E15", "E16", "E19"} {
		if err := run(id, true); err != nil {
			t.Errorf("%s quick: %v", id, err)
		}
	}
}
