// Command metaquery answers a metaquery over a CSV database directory.
//
// Usage:
//
//	metaquery -db DIR -query "R(X,Z) <- P(X,Y), Q(Y,Z)" \
//	    [-type 0|1|2] [-min-sup R] [-min-cnf R] [-min-cvr R] \
//	    [-naive] [-limit N] [-stats] [-timeout D] [-explain] \
//	    [-decide sup|cnf|cvr] [-k R] [-workers N] \
//	    [-approx-eps E -approx-delta D [-approx-max-samples N]]
//
// The database directory holds one CSV file per relation (rows are tuples;
// the file name without extension is the relation name). Thresholds are
// exact rationals written as "1/2", "0.5" or "0"; every comparison is
// strict (index > threshold), as in the paper. Omitted thresholds are
// unconstrained.
//
// -decide switches from enumeration to decision answering: instead of
// listing every admissible rule, the command reports whether ANY type-T
// instantiation has the named index strictly above -k (default 0), using
// the engine's first-witness path (only the queried index is evaluated and
// the search stops at the first witness). On YES the witness rule is
// printed; the exit status is 0 for YES and 3 for NO, so scripts can
// branch on the verdict. -stats prints the per-verdict search counters.
//
// -workers N (decision mode only) partitions the first decomposition
// node's candidate atoms across N goroutines sharing a first-witness
// cancellation; the verdict is identical to the sequential run.
//
// -approx-eps/-approx-delta (decision mode only) switch the decision to
// the sampling ε–δ path: candidate fractions are estimated from uniform
// row samples and accepted or rejected as soon as the confidence interval
// at 1−δ clears the bound, escalating to exact evaluation when it
// straddles. YES verdicts are exactly confirmed and never wrong; NO
// verdicts are wrong with probability at most δ when the true value lies
// outside k±ε. -approx-max-samples caps the per-fraction draws (0 derives
// the budget from ε and δ). -stats additionally reports samples drawn and
// escalations.
//
// -explain (enumeration mode only) prints the chosen plan before the
// answers: the decomposition node visit order with the cost planner's
// per-node output estimates and the actually observed node-table row
// counts side by side. Estimate-vs-actual is the debugging surface for
// the cardinality-statistics subsystem behind cost-based join ordering.
//
// -timeout bounds the search wall-clock (e.g. "2s", "500ms"; 0 = none).
// When the deadline passes mid-search, the answers found so far are still
// printed (findRules engine; the naive engine keeps no partial results), a
// "# search timed out" note marks the output as partial, and the command
// exits with status 4 instead of 1.
//
// Example:
//
//	metaquery -db ./testdata/telecom -query 'R(X,Z) <- P(X,Y), Q(Y,Z)' \
//	    -type 1 -min-cnf 1/2 -min-sup 1/4 -timeout 5s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/mqgo/metaquery"
)

// exitTimeout is the distinct exit status for a search cut off by
// -timeout; partial results have already been printed in that case.
const exitTimeout = 4

// exitNo is the exit status for a -decide run whose verdict is NO, so
// shell scripts can branch on the decision.
const exitNo = 3

// errNoVerdict marks a completed -decide run with a NO answer; main maps
// it to exitNo after the verdict has been printed.
var errNoVerdict = errors.New("decision verdict is NO")

func main() {
	var (
		dbDir   = flag.String("db", "", "directory of CSV files, one per relation (required)")
		query   = flag.String("query", "", "metaquery, e.g. \"R(X,Z) <- P(X,Y), Q(Y,Z)\" (required)")
		typN    = flag.Int("type", 0, "instantiation type: 0, 1 or 2")
		minSup  = flag.String("min-sup", "", "strict support threshold (rational), empty = unconstrained")
		minCnf  = flag.String("min-cnf", "", "strict confidence threshold (rational), empty = unconstrained")
		minCvr  = flag.String("min-cvr", "", "strict cover threshold (rational), empty = unconstrained")
		naive   = flag.Bool("naive", false, "use the naive reference engine instead of findRules")
		limit   = flag.Int("limit", 0, "stop after N answers (0 = all; findRules engine only)")
		showSts = flag.Bool("stats", false, "print engine search statistics")
		timeout = flag.Duration("timeout", 0, "bound the search wall-clock, e.g. 2s (0 = none)")
		decide  = flag.String("decide", "", "decision mode: answer whether index sup|cnf|cvr exceeds -k instead of enumerating")
		kBound  = flag.String("k", "", "decision bound for -decide (strict: index > k; default 0)")
		workers = flag.Int("workers", 0, "decision workers: partition the first node's candidates across N goroutines (-decide only; <=1 = sequential)")
		explain = flag.Bool("explain", false, "print the chosen join order with per-node cost estimates vs. actual row counts (enumeration mode only)")
		apxEps  = flag.Float64("approx-eps", 0, "approximate decision half-band ε in (0,1): sample the fractions instead of computing them exactly (-decide only; needs -approx-delta)")
		apxDel  = flag.Float64("approx-delta", 0, "approximate decision error bound δ in (0,1) (-decide only; needs -approx-eps)")
		apxMax  = flag.Int("approx-max-samples", 0, "per-fraction sample budget before escalating to exact evaluation (0 = derive from ε and δ)")
		trace   = flag.Bool("trace", false, "print the execution's span tree (epoch binding, node joins with estimate-vs-actual rows, sampling) to stderr")
	)
	flag.Parse()
	if *trace {
		cliTracer = metaquery.NewTracer()
	}
	var err error
	if *decide != "" {
		// The enumeration-only flags have no meaning in decision mode:
		// reject them instead of silently dropping a constraint the user
		// believes applied.
		switch {
		case *minSup != "" || *minCnf != "" || *minCvr != "":
			err = fmt.Errorf("-min-sup/-min-cnf/-min-cvr do not apply with -decide; use -k for the decision bound")
		case *naive:
			err = fmt.Errorf("-naive does not apply with -decide (the decision path is engine-only)")
		case *limit != 0:
			err = fmt.Errorf("-limit does not apply with -decide")
		case *explain:
			err = fmt.Errorf("-explain does not apply with -decide (the report describes the enumeration plan)")
		default:
			approx := metaquery.ApproxOptions{Epsilon: *apxEps, Delta: *apxDel, MaxSamples: *apxMax}
			err = runDecide(*dbDir, *query, *typN, *decide, *kBound, *workers, approx, *showSts, *timeout)
		}
		printTrace()
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "metaquery: decision timed out before reaching a verdict")
			os.Exit(exitTimeout)
		}
	} else if *kBound != "" {
		// The decision bound means nothing without -decide; reject it
		// rather than silently running an unconstrained enumeration.
		err = fmt.Errorf("-k requires -decide (use -min-sup/-min-cnf/-min-cvr for enumeration thresholds)")
	} else if *workers != 0 {
		err = fmt.Errorf("-workers requires -decide (enumeration runs are sequential)")
	} else if *apxEps != 0 || *apxDel != 0 || *apxMax != 0 {
		err = fmt.Errorf("-approx-eps/-approx-delta/-approx-max-samples require -decide (enumeration is always exact)")
	} else if *explain && *naive {
		err = fmt.Errorf("-explain does not apply with -naive (the naive engine has no plan)")
	} else if *trace && *naive {
		err = fmt.Errorf("-trace does not apply with -naive (the naive engine records no spans)")
	} else {
		if *explain {
			err = runExplain(*dbDir, *query, *typN, *minSup, *minCnf, *minCvr, *limit, *showSts, *timeout)
		} else {
			err = runTimed(*dbDir, *query, *typN, *minSup, *minCnf, *minCvr, *naive, *limit, *showSts, *timeout)
		}
		printTrace()
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "metaquery: search timed out, results are partial")
			os.Exit(exitTimeout)
		}
	}
	if err != nil {
		if errors.Is(err, errNoVerdict) {
			os.Exit(exitNo)
		}
		fmt.Fprintln(os.Stderr, "metaquery:", err)
		os.Exit(1)
	}
}

// runDecide answers the decision problem ⟨DB, MQ, ix, k, T⟩ through the
// engine's first-witness path and prints the verdict (plus the witness
// rule on YES). workers > 1 partitions the first decomposition node's
// candidates across that many goroutines sharing a first-witness
// cancellation. With approx configured (-approx-eps/-approx-delta) the
// candidate fractions are decided by uniform row sampling under the ε–δ
// contract instead of exactly, escalating to exact evaluation when the
// confidence interval straddles the bound. It returns errNoVerdict on a
// completed NO so main can map it to the dedicated exit status.
func runDecide(dbDir, query string, typN int, index, kBound string, workers int, approx metaquery.ApproxOptions, showStats bool, timeout time.Duration) error {
	var ix metaquery.Index
	switch index {
	case "sup":
		ix = metaquery.Sup
	case "cnf":
		ix = metaquery.Cnf
	case "cvr":
		ix = metaquery.Cvr
	default:
		return fmt.Errorf("-decide must be sup, cnf or cvr (got %q)", index)
	}
	if kBound == "" {
		kBound = "0"
	}
	k, err := metaquery.ParseRat(kBound)
	if err != nil {
		return fmt.Errorf("-k: %w", err)
	}
	db, mq, typ, err := loadQuery(dbDir, query, typN)
	if err != nil {
		return err
	}

	ctx, cancel := searchContext(timeout)
	defer cancel()

	prep, err := metaquery.NewEngine(db).Prepare(mq, metaquery.Options{Type: typ, Workers: workers, Approx: approx})
	if err != nil {
		return err
	}
	var (
		yes   bool
		wit   *metaquery.Instantiation
		stats *metaquery.Stats
	)
	if approx.Enabled() {
		yes, wit, stats, err = prep.DecideApproxStats(ctx, ix, k)
	} else {
		yes, wit, stats, err = prep.DecideFirstStats(ctx, ix, k)
	}
	if err != nil {
		return err
	}
	fmt.Printf("# decision: is there a %s instantiation with %s > %s?\n", typ, ix, k)
	if approx.Enabled() {
		fmt.Printf("# method: approx (eps=%g delta=%g); YES verdicts are exactly confirmed\n", approx.Epsilon, approx.Delta)
	}
	if showStats {
		fmt.Printf("# width=%d nodes=%d candidates=%d pruned_empty=%d pruned_support=%d bodies=%d heads=%d heads_skipped=%d samples=%d escalated=%d\n",
			stats.Width, stats.Nodes, stats.BodyCandidatesTried, stats.BodiesPrunedEmpty,
			stats.BodiesPrunedSupport, stats.BodiesReachedRoot, stats.HeadsTried, stats.HeadsSkipped,
			stats.SamplesDrawn, stats.ApproxEscalated)
	}
	if !yes {
		fmt.Println("NO")
		return errNoVerdict
	}
	rule, err := wit.Apply(mq)
	if err != nil {
		return err
	}
	fmt.Printf("YES  witness: %s\n", rule.String())
	return nil
}

// runExplain answers the query through Prepared.ExplainRun and prints the
// plan report — the chosen node visit order with the cost planner's
// per-node estimates and the observed node-table row counts side by side —
// before the answers. The estimate-vs-actual columns are the debugging
// surface of the cardinality-statistics subsystem: a node whose actual
// rows dwarf its estimate is where the planner's model diverges from the
// data.
func runExplain(dbDir, query string, typN int, minSup, minCnf, minCvr string, limit int, showStats bool, timeout time.Duration) error {
	db, mq, typ, err := loadQuery(dbDir, query, typN)
	if err != nil {
		return err
	}
	th, err := parseThresholds(minSup, minCnf, minCvr)
	if err != nil {
		return err
	}

	ctx, cancel := searchContext(timeout)
	defer cancel()

	prep, err := metaquery.NewEngine(db).Prepare(mq, metaquery.Options{Type: typ, Thresholds: th, Limit: limit})
	if err != nil {
		return err
	}
	// ExplainRun still returns the report and the answers found so far on
	// a deadline, so a timed-out explain keeps its partial output (and
	// main maps the error to the dedicated timeout exit status).
	ex, answers, searchErr := prep.ExplainRun(ctx)
	if searchErr != nil && !errors.Is(searchErr, context.DeadlineExceeded) {
		return searchErr
	}
	for _, line := range strings.Split(strings.TrimRight(ex.String(), "\n"), "\n") {
		fmt.Printf("# %s\n", line)
	}
	if showStats {
		printEngineStats(ex.Stats)
	}
	printAnswers(db, typ, answers)
	if searchErr != nil {
		fmt.Printf("# search timed out after %v; the answers above are partial\n", timeout)
	}
	return searchErr
}

// loadQuery validates the shared -db/-query/-type arguments and loads the
// database and metaquery, the prologue of every CLI mode.
func loadQuery(dbDir, query string, typN int) (*metaquery.Database, *metaquery.Metaquery, metaquery.InstType, error) {
	if dbDir == "" || query == "" {
		return nil, nil, 0, fmt.Errorf("both -db and -query are required (see -help)")
	}
	if typN < 0 || typN > 2 {
		return nil, nil, 0, fmt.Errorf("-type must be 0, 1 or 2")
	}
	db, err := metaquery.LoadCSVDir(dbDir)
	if err != nil {
		return nil, nil, 0, err
	}
	mq, err := metaquery.Parse(query)
	if err != nil {
		return nil, nil, 0, err
	}
	return db, mq, metaquery.InstType(typN), nil
}

// searchContext bounds the search wall-clock when timeout is positive.
func searchContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx := context.Background()
	if cliTracer != nil {
		ctx = metaquery.WithTracer(ctx, cliTracer)
	}
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return ctx, func() {}
}

// cliTracer is the -trace tracer, injected into every search context and
// rendered to stderr after the run.
var cliTracer *metaquery.Tracer

// printTrace renders the -trace span tree to stderr, once. No-op without
// -trace.
func printTrace() {
	if cliTracer == nil {
		return
	}
	fmt.Fprint(os.Stderr, "# trace:\n"+metaquery.RenderTree(cliTracer.Tree()))
	cliTracer = nil
}

// printEngineStats prints the enumeration search counters comment line.
func printEngineStats(st *metaquery.Stats) {
	fmt.Printf("# width=%d nodes=%d candidates=%d pruned_empty=%d pruned_support=%d bodies=%d heads=%d\n",
		st.Width, st.Nodes, st.BodyCandidatesTried, st.BodiesPrunedEmpty,
		st.BodiesPrunedSupport, st.BodiesReachedRoot, st.HeadsTried)
}

// printAnswers prints the database summary, the answer count and one line
// per answer.
func printAnswers(db *metaquery.Database, typ metaquery.InstType, answers []metaquery.Answer) {
	fmt.Printf("# database: %d relations, %d tuples; %s instantiations\n",
		db.NumRelations(), db.Size(), typ)
	fmt.Printf("# %d answers\n", len(answers))
	for _, a := range answers {
		fmt.Printf("%-60s sup=%-8s cnf=%-8s cvr=%-8s\n", a.Rule.String(),
			a.Sup.String(), a.Cnf.String(), a.Cvr.String())
	}
}

// parseThresholds builds the strict admissibility thresholds from the
// CLI's rational strings (empty = unconstrained).
func parseThresholds(minSup, minCnf, minCvr string) (metaquery.Thresholds, error) {
	var th metaquery.Thresholds
	set := func(s string, k *metaquery.Rat, check *bool) error {
		if s == "" {
			return nil
		}
		r, err := metaquery.ParseRat(s)
		if err != nil {
			return err
		}
		*k, *check = r, true
		return nil
	}
	if err := set(minSup, &th.Sup, &th.CheckSup); err != nil {
		return th, err
	}
	if err := set(minCnf, &th.Cnf, &th.CheckCnf); err != nil {
		return th, err
	}
	if err := set(minCvr, &th.Cvr, &th.CheckCvr); err != nil {
		return th, err
	}
	return th, nil
}

// run answers the query without a time bound. It is the historical entry
// point, kept for compatibility; runTimed is the full CLI.
func run(dbDir, query string, typN int, minSup, minCnf, minCvr string, naive bool, limit int, showStats bool) error {
	return runTimed(dbDir, query, typN, minSup, minCnf, minCvr, naive, limit, showStats, 0)
}

func runTimed(dbDir, query string, typN int, minSup, minCnf, minCvr string, naive bool, limit int, showStats bool, timeout time.Duration) error {
	db, mq, typ, err := loadQuery(dbDir, query, typN)
	if err != nil {
		return err
	}
	th, err := parseThresholds(minSup, minCnf, minCvr)
	if err != nil {
		return err
	}

	ctx, cancel := searchContext(timeout)
	defer cancel()

	var answers []metaquery.Answer
	var searchErr error
	if naive {
		answers, searchErr = metaquery.NaiveFindRulesContext(ctx, db, mq, typ, th)
		if searchErr != nil && !errors.Is(searchErr, context.DeadlineExceeded) {
			return searchErr
		}
	} else {
		eng := metaquery.NewEngine(db)
		prep, err := eng.Prepare(mq, metaquery.Options{Type: typ, Thresholds: th, Limit: limit})
		if err != nil {
			return err
		}
		// Stream so that answers found before a deadline are kept.
		var stats metaquery.Stats
		for a, err := range prep.StreamStats(ctx, &stats) {
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					searchErr = err
					break
				}
				return err
			}
			answers = append(answers, a)
		}
		sort.Slice(answers, func(i, j int) bool {
			return answers[i].Rule.String() < answers[j].Rule.String()
		})
		if showStats {
			printEngineStats(&stats)
		}
	}

	printAnswers(db, typ, answers)
	if searchErr != nil {
		if naive {
			fmt.Printf("# search timed out after %v; the naive engine keeps no partial results\n", timeout)
		} else {
			fmt.Printf("# search timed out after %v; the answers above are partial\n", timeout)
		}
		return searchErr
	}
	return nil
}
