package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/mqgo/metaquery"
)

// writeTelecomCSV writes a small CSV database for CLI tests.
func writeTelecomCSV(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"citizen.csv":  "john,italy\nmaria,italy\n",
		"language.csv": "italy,italian\n",
		"speaks.csv":   "john,italian\nmaria,italian\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunBasic(t *testing.T) {
	dir := writeTelecomCSV(t)
	if err := run(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "1/2", "0.9", "", false, 0, false); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunNaiveEngine(t *testing.T) {
	dir := writeTelecomCSV(t)
	if err := run(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 1, "", "1/2", "", true, 0, false); err != nil {
		t.Fatalf("naive run failed: %v", err)
	}
}

func TestRunWithStatsAndLimit(t *testing.T) {
	dir := writeTelecomCSV(t)
	if err := run(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 2, "0", "", "0", false, 1, true); err != nil {
		t.Fatalf("stats/limit run failed: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	dir := writeTelecomCSV(t)
	cases := []struct {
		name string
		err  func() error
	}{
		{"missing db", func() error { return run("", "R(X) <- P(X)", 0, "", "", "", false, 0, false) }},
		{"missing query", func() error { return run(dir, "", 0, "", "", "", false, 0, false) }},
		{"bad type", func() error { return run(dir, "R(X) <- P(X)", 7, "", "", "", false, 0, false) }},
		{"bad query", func() error { return run(dir, "not a query", 0, "", "", "", false, 0, false) }},
		{"bad threshold", func() error {
			return run(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "x/y", "", "", false, 0, false)
		}},
		{"bad cnf threshold", func() error {
			return run(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "", "-1", "", false, 0, false)
		}},
		{"bad cvr threshold", func() error {
			return run(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "", "", "2/0", false, 0, false)
		}},
		{"missing dir", func() error { return run(dir+"/nope", "R(X) <- P(X)", 0, "", "", "", false, 0, false) }},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunImpureQueryType0Fails(t *testing.T) {
	dir := writeTelecomCSV(t)
	// Impure metaquery under type-0 must surface the core validation error.
	if err := run(dir, "P(X) <- P(X,Y)", 0, "", "", "", false, 0, false); err == nil {
		t.Error("impure metaquery accepted under type-0")
	}
}

func TestRunDecideYes(t *testing.T) {
	dir := writeTelecomCSV(t)
	if err := runDecide(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "cnf", "1/2", 0, metaquery.ApproxOptions{}, true, 0); err != nil {
		t.Fatalf("decide run failed: %v", err)
	}
}

func TestRunDecideNo(t *testing.T) {
	dir := writeTelecomCSV(t)
	// No index can strictly exceed 1: a clean NO, reported as errNoVerdict
	// so main can exit with the dedicated status.
	err := runDecide(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "sup", "1", 0, metaquery.ApproxOptions{}, false, 0)
	if err != errNoVerdict {
		t.Fatalf("NO decision returned %v, want errNoVerdict", err)
	}
}

func TestRunDecideWorkers(t *testing.T) {
	dir := writeTelecomCSV(t)
	// The parallel path must reach the same verdicts as the sequential one.
	if err := runDecide(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "cnf", "1/2", 3, metaquery.ApproxOptions{}, false, 0); err != nil {
		t.Fatalf("parallel decide YES failed: %v", err)
	}
	if err := runDecide(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "sup", "1", 3, metaquery.ApproxOptions{}, false, 0); err != errNoVerdict {
		t.Fatalf("parallel decide NO returned %v, want errNoVerdict", err)
	}
}

func TestRunDecideApprox(t *testing.T) {
	dir := writeTelecomCSV(t)
	approx := metaquery.ApproxOptions{Epsilon: 0.1, Delta: 0.1}
	// The ε–δ path must reach the same verdicts as the exact one on this
	// tiny database (the sample budget covers every population).
	if err := runDecide(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "cnf", "1/2", 0, approx, true, 0); err != nil {
		t.Fatalf("approx decide YES failed: %v", err)
	}
	if err := runDecide(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "sup", "1", 0, approx, false, 0); err != errNoVerdict {
		t.Fatalf("approx decide NO returned %v, want errNoVerdict", err)
	}
	// Invalid parameters surface as hard errors through Prepare.
	bad := metaquery.ApproxOptions{Epsilon: 2, Delta: 0.1}
	if err := runDecide(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "cnf", "1/2", 0, bad, false, 0); err == nil || err == errNoVerdict {
		t.Fatalf("invalid approx options returned %v, want a hard error", err)
	}
}

func TestRunExplain(t *testing.T) {
	dir := writeTelecomCSV(t)
	if err := runExplain(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "0", "", "", 0, true, 0); err != nil {
		t.Fatalf("explain run failed: %v", err)
	}
	// Validation errors still surface through the explain path.
	if err := runExplain("", "R(X) <- P(X)", 0, "", "", "", 0, false, 0); err == nil {
		t.Error("explain with missing -db accepted")
	}
	if err := runExplain(dir, "R(X) <- P(X)", 5, "", "", "", 0, false, 0); err == nil {
		t.Error("explain with bad -type accepted")
	}
	if err := runExplain(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "x/y", "", "", 0, false, 0); err == nil {
		t.Error("explain with bad threshold accepted")
	}
}

func TestRunDecideValidation(t *testing.T) {
	dir := writeTelecomCSV(t)
	for name, fn := range map[string]func() error{
		"bad index": func() error {
			return runDecide(dir, "R(X) <- P(X)", 0, "bogus", "0", 0, metaquery.ApproxOptions{}, false, 0)
		},
		"bad bound": func() error {
			return runDecide(dir, "R(X) <- P(X)", 0, "sup", "x/y", 0, metaquery.ApproxOptions{}, false, 0)
		},
		"bad type": func() error {
			return runDecide(dir, "R(X) <- P(X)", 9, "sup", "0", 0, metaquery.ApproxOptions{}, false, 0)
		},
		"missing db": func() error {
			return runDecide("", "R(X) <- P(X)", 0, "sup", "0", 0, metaquery.ApproxOptions{}, false, 0)
		},
		"bad query": func() error {
			return runDecide(dir, "not a query", 0, "sup", "0", 0, metaquery.ApproxOptions{}, false, 0)
		},
	} {
		if err := fn(); err == nil || err == errNoVerdict {
			t.Errorf("%s: got %v, want a hard error", name, err)
		}
	}
}
