package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeBigCSV writes a database whose type-2 search space is far too large
// to exhaust in a few milliseconds.
func writeBigCSV(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for r := 0; r < 10; r++ {
		rows := ""
		for i := 0; i < 20; i++ {
			rows += fmt.Sprintf("a%d,b%d,c%d\n", (i*7+r)%9, (i*5+r)%9, (i*3+r)%9)
		}
		name := filepath.Join(dir, fmt.Sprintf("r%d.csv", r))
		if err := os.WriteFile(name, []byte(rows), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunTimedDeadline(t *testing.T) {
	dir := writeBigCSV(t)
	err := runTimed(dir, "R(X,W) <- P(X,Y), Q(Y,Z), S(Z,W)", 2, "", "", "", false, 0, false, 20*time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunTimedGenerousDeadlineSucceeds(t *testing.T) {
	dir := writeTelecomCSV(t)
	if err := runTimed(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "1/2", "", "", false, 0, true, time.Minute); err != nil {
		t.Fatalf("run with ample timeout failed: %v", err)
	}
}

// An -explain run cut off by its deadline must surface the deadline error
// (so main maps it to the timeout exit status) after printing the plan
// report and partial answers, exactly like the plain enumeration path.
func TestRunExplainDeadline(t *testing.T) {
	dir := writeBigCSV(t)
	err := runExplain(dir, "R(X,W) <- P(X,Y), Q(Y,Z), S(Z,W)", 2, "", "", "", 0, false, 20*time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("explain: err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunTimedNaiveDeadline(t *testing.T) {
	dir := writeBigCSV(t)
	err := runTimed(dir, "R(X,W) <- P(X,Y), Q(Y,Z), S(Z,W)", 2, "", "", "", true, 0, false, 20*time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("naive: err = %v, want context.DeadlineExceeded", err)
	}
}
