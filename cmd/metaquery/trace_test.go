package main

import (
	"testing"

	"github.com/mqgo/metaquery"
)

// TestRunWithTrace drives the -trace plumbing: a set cliTracer is
// injected into the search context, the run records spans, and
// printTrace renders them once and disarms the tracer.
func TestRunWithTrace(t *testing.T) {
	dir := writeTelecomCSV(t)
	cliTracer = metaquery.NewTracer()
	t.Cleanup(func() { cliTracer = nil })
	if err := run(dir, "R(X,Z) <- P(X,Y), Q(Y,Z)", 0, "", "1/2", "", false, 0, false); err != nil {
		t.Fatalf("traced run failed: %v", err)
	}
	tr := cliTracer
	if len(tr.Tree()) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	printTrace()
	if cliTracer != nil {
		t.Fatal("printTrace did not disarm the tracer")
	}
	printTrace() // second call is a no-op
}
