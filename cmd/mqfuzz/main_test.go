package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A short fuzz run across every shape must pass and report its case count.
func TestRunSmoke(t *testing.T) {
	out := tempFile(t)
	if err := run(out, 1, 24, "", false, "", false); err != nil {
		t.Fatal(err)
	}
	text := readBack(t, out)
	if !strings.Contains(text, "24 case(s)") {
		t.Errorf("output %q does not report the case count", text)
	}
	if !strings.Contains(text, "decide-approx sweep") || !strings.Contains(text, "out-of-band error rate") {
		t.Errorf("output does not report the approx confusion summary:\n%s", text)
	}
}

// The -shape filter restricts generation and rejects unknown names.
func TestRunShapeFilter(t *testing.T) {
	out := tempFile(t)
	if err := run(out, 3, 4, "t0-chain", true, "", false); err != nil {
		t.Fatal(err)
	}
	text := readBack(t, out)
	if !strings.Contains(text, "ok t0-chain seed=3") || !strings.Contains(text, "ok t0-chain seed=6") {
		t.Errorf("verbose output missing per-case lines:\n%s", text)
	}
	if err := run(out, 1, 1, "no-such-shape", false, "", false); err == nil {
		t.Fatal("expected an error for an unknown shape")
	}
}

// Delta mode drives the incremental-engine differential; a short sweep
// across shapes must pass and report its distinct verdict line.
func TestRunDeltasSmoke(t *testing.T) {
	out := tempFile(t)
	if err := run(out, 1, 16, "", false, "", true); err != nil {
		t.Fatal(err)
	}
	text := readBack(t, out)
	if !strings.Contains(text, "match from-scratch rebuilds") {
		t.Errorf("output %q does not report the delta-mode verdict", text)
	}
}

func TestRunRejectsBadN(t *testing.T) {
	out := tempFile(t)
	if err := run(out, 1, 0, "", false, "", false); err == nil {
		t.Fatal("expected an error for -n 0")
	}
}

func tempFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func readBack(t *testing.T, f *os.File) string {
	t.Helper()
	blob, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}
