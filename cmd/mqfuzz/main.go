// Command mqfuzz drives the differential oracle harness (internal/diff)
// over seeded random scenarios: every generated case is executed on every
// production path — naive enumeration, the findRules engine, the
// Prepared/Stream session API, the sequential, parallel and engine-backed
// deciders, and the sampling ε–δ approximate decider at every
// verdict-flipping bound — and each is checked against the transparent
// brute-force oracle, rat-exact and order-insensitive. The approximate
// decider's confusion counts (TP/FP/TN/FN per shape) are summarized at the
// end of a clean run and its out-of-band error rate is gated against δ.
//
// On a mismatch, the failing scenario is minimized — delta debugging
// (ddmin) over the database's tuples, then a greedy polish dropping body
// literals, relations and single tuples while the divergence persists —
// and printed in the committable repro format; save it under
// internal/diff/testdata/corpus/<name>.scenario and the TestCorpus
// regression test replays it forever.
//
// Usage:
//
//	mqfuzz -n 1000                 # 1000 cases across all shapes
//	mqfuzz -seed 42 -n 200         # different seed range
//	mqfuzz -shape t2-pad -n 500    # one shape only
//	mqfuzz -deltas -n 300          # incremental-engine mode: Apply deltas
//	mqfuzz -shapes                 # list the registered shapes
//	mqfuzz -write-repro DIR        # also write any repro into DIR
//
// With -deltas each case instead drives a scripted Engine.Apply sequence
// (diff.RunDeltas): the long-lived Prepared values are checked against
// from-scratch rebuilds after every delta batch, differential-testing the
// incremental maintenance of relations, statistics and caches.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/mqgo/metaquery/internal/diff"
	"github.com/mqgo/metaquery/internal/gen"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "base seed; case i of a shape uses seed+i")
		n          = flag.Int("n", 1000, "number of scenarios to run")
		shape      = flag.String("shape", "", "restrict to one shape (see -shapes); empty = round-robin over all")
		listShapes = flag.Bool("shapes", false, "list the registered scenario shapes and exit")
		verbose    = flag.Bool("v", false, "log every case")
		writeRepro = flag.String("write-repro", "", "directory to write a minimized repro file into on failure")
		deltas     = flag.Bool("deltas", false, "incremental-engine mode: drive scripted Engine.Apply deltas and compare every path against from-scratch rebuilds")
	)
	flag.Parse()
	if *listShapes {
		for _, s := range gen.Shapes() {
			fmt.Println(s)
		}
		return
	}
	if err := run(os.Stdout, *seed, *n, *shape, *verbose, *writeRepro, *deltas); err != nil {
		fmt.Fprintln(os.Stderr, "mqfuzz:", err)
		os.Exit(1)
	}
}

// run executes the fuzz loop, writing progress and any repro to w. With
// deltas set, each case runs the incremental-engine differential instead of
// the static one.
func run(w *os.File, seed int64, n int, shape string, verbose bool, writeRepro string, deltas bool) error {
	shapes := gen.Shapes()
	if shape != "" {
		found := false
		for _, s := range shapes {
			if s == shape {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown shape %q (have: %s)", shape, strings.Join(shapes, ", "))
		}
		shapes = []string{shape}
	}
	if n <= 0 {
		return fmt.Errorf("-n must be positive")
	}
	// Static mode also drives the ε–δ approximate decider at every derived
	// verdict-flipping bound; the tally carries the sweep-level confusion
	// accounting its error contract is gated on below.
	var tally *diff.ApproxTally
	if !deltas {
		tally = diff.NewApproxTally()
	}
	ran := 0
	for i := 0; i < n; i++ {
		sh := shapes[i%len(shapes)]
		caseSeed := seed + int64(i/len(shapes))
		s, err := gen.NewScenario(caseSeed, sh)
		if err != nil {
			return err
		}
		var m *diff.Mismatch
		if deltas {
			m, err = diff.RunDeltas(s)
		} else {
			m, err = diff.RunTally(s, tally)
		}
		if err != nil {
			return fmt.Errorf("%s/%d: %w", sh, caseSeed, err)
		}
		ran++
		if verbose {
			fmt.Fprintf(w, "ok %s seed=%d\n", sh, caseSeed)
		}
		if m == nil {
			continue
		}
		// Divergence: minimize and print a committable repro. The minimizer's
		// failure predicate is the static differential, so delta-mode repros
		// are reported unminimized (the scenario still reproduces via
		// RunDeltas — the script is derived from its seed and shape).
		min := s
		if !deltas {
			min = diff.Minimize(s)
		}
		repro, merr := diff.MarshalScenario(min)
		if merr != nil {
			return fmt.Errorf("%v (marshal of minimized repro failed: %v)", m, merr)
		}
		fmt.Fprintf(w, "MISMATCH after %d case(s): %v\n", ran, m)
		fmt.Fprintf(w, "minimized repro (save as internal/diff/testdata/corpus/%s-seed%d.scenario):\n%s",
			sh, caseSeed, repro)
		if writeRepro != "" {
			if err := os.MkdirAll(writeRepro, 0o755); err != nil {
				return err
			}
			path := filepath.Join(writeRepro, fmt.Sprintf("%s-seed%d.scenario", sh, caseSeed))
			if err := os.WriteFile(path, []byte(repro), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "repro written to %s\n", path)
		}
		return fmt.Errorf("differential mismatch on %s seed=%d", sh, caseSeed)
	}
	verdict := "all paths agree with the oracle"
	if deltas {
		verdict = "all incremental paths match from-scratch rebuilds"
	}
	if tally != nil {
		fmt.Fprintln(w, tally.Summary())
		// Per-case checks already fail hard on false positives and in-band
		// misses; the aggregate rate is the remaining ε–δ contract term.
		if rate := tally.OutOfBandErrorRate(); rate > diff.ApproxDelta {
			return fmt.Errorf("approx out-of-band error rate %.4f exceeds delta %g", rate, diff.ApproxDelta)
		}
	}
	fmt.Fprintf(w, "mqfuzz: %d case(s) across %d shape(s), %s\n", ran, len(shapes), verdict)
	return nil
}
