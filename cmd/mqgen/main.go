// Command mqgen generates synthetic CSV databases for metaquery
// experiments: random uniform databases, layered chain databases, and the
// paper's Figure 1 / Figure 2 telecom database.
//
// Usage:
//
//	mqgen -out DIR -kind random -relations 3 -arity 2 -tuples 100 -domain 20 -seed 1
//	mqgen -out DIR -kind chain -layers 4 -width 10 -tuples 200 -seed 1
//	mqgen -out DIR -kind db1
//	mqgen -out DIR -kind db1ext
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mqgo/metaquery"
	"github.com/mqgo/metaquery/internal/workload"
)

func main() {
	var (
		out       = flag.String("out", "", "output directory (required)")
		kind      = flag.String("kind", "random", "workload kind: random, chain, db1, db1ext")
		relations = flag.Int("relations", 3, "random: number of relations")
		arity     = flag.Int("arity", 2, "random: relation arity")
		tuples    = flag.Int("tuples", 100, "random/chain: tuples per relation")
		domain    = flag.Int("domain", 20, "random: active-domain size")
		layers    = flag.Int("layers", 4, "chain: number of layered relations")
		width     = flag.Int("width", 10, "chain: constants per layer")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*out, *kind, *relations, *arity, *tuples, *domain, *layers, *width, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "mqgen:", err)
		os.Exit(1)
	}
}

func run(out, kind string, relations, arity, tuples, domain, layers, width int, seed int64) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	var db *metaquery.Database
	switch kind {
	case "random":
		db = workload.Random{
			Relations: relations, Arity: arity, Tuples: tuples, Domain: domain, Seed: seed,
		}.Build()
	case "chain":
		db = workload.ChainDB(layers, width, tuples, seed)
	case "db1":
		db = workload.DB1()
	case "db1ext":
		db = workload.DB1Extended()
	default:
		return fmt.Errorf("unknown kind %q (random, chain, db1, db1ext)", kind)
	}
	if err := metaquery.SaveCSVDir(db, out); err != nil {
		return err
	}
	fmt.Printf("wrote %d relations (%d tuples) to %s\n", db.NumRelations(), db.Size(), out)
	return nil
}
