package main

import (
	"path/filepath"
	"testing"

	"github.com/mqgo/metaquery"
)

func TestGenerateKinds(t *testing.T) {
	cases := []struct {
		kind      string
		relations int // expected relation count, -1 = skip check
	}{
		{"random", 3},
		{"chain", 4},
		{"db1", 3},
		{"db1ext", 3},
	}
	for _, c := range cases {
		dir := filepath.Join(t.TempDir(), c.kind)
		if err := run(dir, c.kind, 3, 2, 20, 10, 4, 5, 1); err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		db, err := metaquery.LoadCSVDir(dir)
		if err != nil {
			t.Fatalf("%s: reload: %v", c.kind, err)
		}
		if c.relations >= 0 && db.NumRelations() != c.relations {
			t.Errorf("%s: %d relations, want %d", c.kind, db.NumRelations(), c.relations)
		}
		if db.Size() == 0 {
			t.Errorf("%s: empty database", c.kind)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1 := filepath.Join(t.TempDir(), "a")
	d2 := filepath.Join(t.TempDir(), "b")
	for _, d := range []string{d1, d2} {
		if err := run(d, "random", 2, 2, 15, 6, 0, 0, 42); err != nil {
			t.Fatal(err)
		}
	}
	a, err := metaquery.LoadCSVDir(d1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := metaquery.LoadCSVDir(d2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() {
		t.Errorf("same seed produced different sizes: %d vs %d", a.Size(), b.Size())
	}
}

func TestGenerateValidation(t *testing.T) {
	if err := run("", "random", 1, 1, 1, 1, 1, 1, 1); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run(t.TempDir(), "bogus", 1, 1, 1, 1, 1, 1, 1); err == nil {
		t.Error("unknown kind accepted")
	}
}
