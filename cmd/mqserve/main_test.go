package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a Write-synchronized buffer: run writes from its own
// goroutine while the test polls the output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// writeFigure1CSV lays out the paper's Figure 1 database as a CSV
// directory for the -db flag.
func writeFigure1CSV(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"citizen.csv":  "john,italy\nbob,england\n",
		"language.csv": "italy,italian\nengland,english\n",
		"speaks.csv":   "john,italian\nbob,english\n# comment rows are skipped\n",
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

var listenRE = regexp.MustCompile(`listening on (\S+) `)

// TestServeQueryAndDrain boots the real daemon on an ephemeral port,
// serves one query and one decision over HTTP, then delivers SIGTERM and
// checks the drain path exits 0 with the final stats line.
func TestServeQueryAndDrain(t *testing.T) {
	dir := writeFigure1CSV(t)
	var stdout, stderr syncBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(context.Background(),
			[]string{"-addr", "127.0.0.1:0", "-db", "fig1=" + dir, "-drain-timeout", "5s"},
			&stdout, &stderr)
	}()

	// Wait for the listener line and extract the bound address.
	var addr string
	for i := 0; i < 200 && addr == ""; i++ {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if addr == "" {
		t.Fatalf("no listening line; stdout=%q stderr=%q", stdout.String(), stderr.String())
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/query", "application/json",
		strings.NewReader(`{"db":"fig1","query":"R(X,Z) <- P(X,Y), Q(Y,Z)","min_cnf":"1/2"}`))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	var qr struct {
		Answers []struct{ Rule string } `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(qr.Answers) == 0 {
		t.Fatalf("query: status %d, %d answers", resp.StatusCode, len(qr.Answers))
	}
	found := false
	for _, a := range qr.Answers {
		if a.Rule == "speaks(X,Z) <- citizen(X,Y), language(Y,Z)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected the Figure 1 rule among %+v", qr.Answers)
	}

	resp, err = http.Post(base+"/v1/decide", "application/json",
		strings.NewReader(`{"db":"fig1","query":"R(X,Z) <- P(X,Y), Q(Y,Z)","index":"cnf","k":"1/2"}`))
	if err != nil {
		t.Fatalf("decide: %v", err)
	}
	var dr struct {
		Yes bool `json:"yes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatalf("decode decide: %v", err)
	}
	resp.Body.Close()
	if !dr.Yes {
		t.Fatal("decide cnf > 1/2 should be YES on Figure 1")
	}

	// SIGTERM → graceful drain → exit 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit %d; stderr=%q", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not drain; stdout=%q", stdout.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "shutting down") || !strings.Contains(out, "drained (1 queries, 1 decisions") {
		t.Fatalf("drain lines missing from stdout: %q", out)
	}
}

func TestRunBadFlagsAndDirs(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run(context.Background(), []string{"-db", "nodir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("malformed -db: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-db", "x=/no/such/dir"}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing dir: exit %d, want 1", code)
	}
	if code := run(context.Background(), []string{"-addr", "256.256.256.256:99999"}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad addr: exit %d, want 1", code)
	}
}
