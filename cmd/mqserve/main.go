// Command mqserve is the metaquery server daemon: it serves one or more
// named CSV databases over the HTTP/JSON surface of internal/server —
// full answers (POST /v1/query), first-witness decisions (POST
// /v1/decide), streamed NDJSON answers (POST /v1/stream), database loads
// (POST /v1/db/{name}) and observability (GET /v1/stats, GET /debug,
// GET /metrics in Prometheus text form, and /debug/pprof/ behind -pprof).
//
// Usage:
//
//	mqserve -addr :8080 -db telecom=./csv/telecom -db hr=./csv/hr \
//	    [-max-inflight N] [-timeout D] [-max-timeout D] \
//	    [-cache-size N] [-drain-timeout D] \
//	    [-slow-query-ms N] [-pprof] [-quiet]
//
// Requests log one structured line each (endpoint, database, status,
// duration) unless -quiet; with -slow-query-ms set, requests over the
// threshold additionally log their execution span tree at warning level.
//
// Admission control: at most -max-inflight searches execute concurrently;
// requests beyond that are shed with 429 + Retry-After instead of queued.
// Every search runs under a deadline (-timeout unless the request carries
// timeout_ms, clamped to -max-timeout) riding the engine's context
// plumbing, so a deadline or client disconnect stops the search promptly.
//
// On SIGTERM or SIGINT the server drains gracefully: the listener closes,
// in-flight searches run to completion (bounded by -drain-timeout), then
// the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/mqgo/metaquery/internal/server"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// dbFlags collects repeated -db name=dir mounts.
type dbFlags []string

func (d *dbFlags) String() string { return strings.Join(*d, ",") }
func (d *dbFlags) Set(s string) error {
	if !strings.Contains(s, "=") {
		return fmt.Errorf("-db wants name=dir (got %q)", s)
	}
	*d = append(*d, s)
	return nil
}

// run is the daemon body, factored from main so tests can drive it with a
// cancellable context (the same path the signal handler uses) and capture
// its output. It returns the process exit status.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mqserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var dbs dbFlags
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		maxInFlight  = fs.Int("max-inflight", 64, "max concurrently executing searches; beyond this requests get 429")
		timeout      = fs.Duration("timeout", 10*time.Second, "default per-request search deadline")
		maxTimeout   = fs.Duration("max-timeout", 2*time.Minute, "upper clamp on client-requested deadlines")
		cacheSize    = fs.Int("cache-size", 256, "per-database prepared-metaquery LRU capacity")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight searches on shutdown")
		slowQueryMS  = fs.Int64("slow-query-ms", 0, "log requests slower than this (ms) at warning level with their span tree; 0 disables")
		enablePprof  = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		quiet        = fs.Bool("quiet", false, "suppress per-request structured logging")
	)
	fs.Var(&dbs, "db", "mount a database: name=csv-dir (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(stderr, nil))
	}
	srv := server.New(server.Config{
		MaxInFlight:    *maxInFlight,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		PrepCacheSize:  *cacheSize,
		Logger:         logger,
		SlowQuery:      time.Duration(*slowQueryMS) * time.Millisecond,
		EnablePprof:    *enablePprof,
	})
	for _, mount := range dbs {
		name, dir, _ := strings.Cut(mount, "=")
		if err := srv.LoadDir(name, dir); err != nil {
			fmt.Fprintf(stderr, "mqserve: loading %s: %v\n", mount, err)
			return 1
		}
		fmt.Fprintf(stdout, "mqserve: loaded database %q from %s\n", name, dir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "mqserve: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// The daemon drains on SIGTERM/SIGINT (or the caller's ctx): stop
	// accepting, let in-flight searches finish, then exit cleanly.
	ctx, stop := signal.NotifyContext(ctx, syscall.SIGTERM, os.Interrupt)
	defer stop()

	fmt.Fprintf(stdout, "mqserve: listening on %s (%d databases, max %d in-flight)\n",
		ln.Addr(), len(dbs), *maxInFlight)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "mqserve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills hard
	fmt.Fprintf(stdout, "mqserve: shutting down, draining in-flight searches\n")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(stderr, "mqserve: drain: %v\n", err)
		return 1
	}
	st := srv.Stats()
	fmt.Fprintf(stdout, "mqserve: drained (%d queries, %d decisions, %d streams, %d rejected)\n",
		st.Queries, st.Decisions, st.Streams, st.Rejected)
	return 0
}
