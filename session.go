package metaquery

import (
	"context"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
)

// Engine is a reusable metaquerying session bound to one database,
// analogous to database/sql's *DB: it builds and caches the per-database
// structures every search consults (relation indices, arity/candidate
// buckets, materialized atom tables) once, and shares them across all
// queries prepared on it. Safe for concurrent use.
//
// The database is mutable through Engine.Apply, which absorbs batched
// tuple inserts/deletes into a new epoch snapshot (incrementally
// maintained statistics, candidate index and caches) without disturbing
// in-flight executions; direct mutation of the *Database is not allowed
// while the Engine is in use.
type Engine = engine.Engine

// Delta is a batched database change (per-relation tuple inserts and
// deletes) applied atomically by Engine.Apply.
type Delta = engine.Delta

// RelationDelta is one relation's change within a Delta.
type RelationDelta = engine.RelationDelta

// ApplyResult reports what an Engine.Apply did: the epoch now current and
// the effective insert/delete/compaction counts.
type ApplyResult = engine.ApplyResult

// Prepared is a metaquery analyzed once — validation, hypertree
// decomposition, scheme ordering — and executable many times against its
// Engine's database, analogous to database/sql's *Stmt. Safe for
// concurrent use.
//
// Execute with FindRules / FindRulesStats (full sorted answer set),
// Stream / StreamStats (incremental answers in discovery order; breaking
// out of the loop abandons the remaining search), or DecideFirst /
// DecideFirstStats (first-witness decision answering: only the queried
// index is evaluated and the search stops at the first witness).
type Prepared = engine.Prepared

// Explain is the plan report of one prepared execution: the decomposition
// node visit order with the cost planner's per-node output estimates and
// the actually observed node-table row counts side by side. Collect one
// with Prepared.ExplainRun; it is the estimate-vs-actual debugging surface
// of the cardinality-statistics subsystem (cmd/metaquery -explain prints
// it).
type Explain = engine.Explain

// ExplainNode is one node's record in an Explain report.
type ExplainNode = engine.ExplainNode

// NewEngine builds a reusable session over db. Use eng.Prepare(mq, opt) to
// analyze a metaquery once and execute it many times, eng.FindRules for
// one-shot queries that still share the database caches, and eng.Decide
// for engine-accelerated decision problems.
//
// Construction also collects the cardinality statistics (per-relation row
// counts, per-column distinct counts, most-common-value sketches) behind
// the engine's cost-based join planner; they are cached on the engine and
// invalidated with it.
func NewEngine(db *Database) *Engine { return engine.NewEngine(db) }

// FindRulesContext is FindRules bounded by ctx: the search stops promptly
// with ctx.Err() when ctx is cancelled or its deadline passes.
func FindRulesContext(ctx context.Context, db *Database, mq *Metaquery, opt Options) ([]Answer, error) {
	return engine.NewEngine(db).FindRules(ctx, mq, opt)
}

// FindRulesStatsContext is FindRulesContext returning the engine's search
// counters.
func FindRulesStatsContext(ctx context.Context, db *Database, mq *Metaquery, opt Options) ([]Answer, *Stats, error) {
	return engine.FindRulesContext(ctx, db, mq, opt)
}

// NaiveFindRulesContext is NaiveFindRules bounded by ctx: enumeration
// stops promptly with ctx.Err() when ctx is cancelled or its deadline
// passes.
func NaiveFindRulesContext(ctx context.Context, db *Database, mq *Metaquery, typ InstType, th Thresholds) ([]Answer, error) {
	return core.NaiveAnswersContext(ctx, db, mq, typ, th)
}

// DecideContext is Decide bounded by ctx: enumeration stops promptly with
// ctx.Err() when ctx is cancelled or its deadline passes.
func DecideContext(ctx context.Context, db *Database, mq *Metaquery, ix Index, k Rat, typ InstType) (bool, *Instantiation, error) {
	return core.DecideContext(ctx, db, mq, ix, k, typ)
}

// DecideFirstContext solves the decision problem ⟨DB, MQ, I, k, T⟩ with
// the engine's dedicated first-witness path: the hypertree-guided body
// search evaluates only the queried index, visits decomposition nodes
// smallest-estimated-table first, skips head enumeration when the index
// does not depend on the head (support), and stops at the first witness.
//
// It replaces the earlier idiom of running the full FindRules search with
// Options.Limit = 1, which paid the entire materialize-then-filter cost on
// a NO verdict. Callers deciding repeatedly over one database should hold
// a NewEngine and use Prepared.DecideFirst directly.
func DecideFirstContext(ctx context.Context, db *Database, mq *Metaquery, ix Index, k Rat, typ InstType) (bool, *Instantiation, error) {
	return engine.DecideFirst(ctx, db, mq, ix, k, typ)
}

// DecideParallelContext is DecideParallel bounded by ctx: all workers stop
// promptly with ctx.Err() when ctx is cancelled or its deadline passes.
func DecideParallelContext(ctx context.Context, db *Database, mq *Metaquery, ix Index, k Rat, typ InstType, workers int) (bool, *Instantiation, error) {
	return core.DecideParallelContext(ctx, db, mq, ix, k, typ, workers)
}
