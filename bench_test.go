// Benchmarks regenerating the measurable shape of every row of Figure 5
// (the paper's complexity summary) and of the Section 4 algorithm bounds.
// Each benchmark is named for the artifact it reproduces; EXPERIMENTS.md
// maps benchmark output to the paper's claims. Absolute times are
// machine-dependent; the shapes (who wins, how the curves grow) are what
// the reproduction asserts.
package metaquery

import (
	"context"
	"fmt"
	"testing"

	"github.com/mqgo/metaquery/internal/circuit"
	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/ext"
	"github.com/mqgo/metaquery/internal/graphs"
	"github.com/mqgo/metaquery/internal/logic"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/reductions"
	"github.com/mqgo/metaquery/internal/workload"

	mrand "math/rand"
)

// --- Worked examples (Figures 1-2) ---------------------------------------

// BenchmarkFig1DB1 answers the running metaquery (4) on the Figure 1
// database under each instantiation type.
func BenchmarkFig1DB1(b *testing.B) {
	db := workload.DB1()
	mq := workload.MQ4()
	for _, typ := range []core.InstType{core.Type0, core.Type1, core.Type2} {
		b.Run(typ.String(), func(b *testing.B) {
			opt := engine.Options{Type: typ, Thresholds: core.AllAbove(rat.New(1, 2), rat.New(1, 2), rat.New(1, 2))}
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.FindRules(db, mq, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 5 row 1 (Theorem 3.21): NP-complete, k = 0 -------------------

// BenchmarkFig5Row1ThreeCol runs the 3-COLORING reduction end to end for
// growing graph sizes; the exponential growth of the search demonstrates
// the hardness-side shape.
func BenchmarkFig5Row1ThreeCol(b *testing.B) {
	for _, n := range []int{4, 5, 6, 7} {
		rng := mrand.New(mrand.NewSource(int64(n)))
		g := graphs.Random(rng, n, 0.5)
		if len(g.Edges) == 0 {
			g = graphs.Cycle(n)
		}
		red, err := reductions.BuildThreeColoring(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Decide(red.DB, red.MQ, core.Sup, rat.Zero, core.Type0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 5 row 2 (Theorem 3.24): NP, cvr/sup with k > 0 ---------------

// BenchmarkFig5Row2Threshold decides the support-threshold problem on the
// 3-COLORING instance, where the certificate additionally carries counts.
func BenchmarkFig5Row2Threshold(b *testing.B) {
	red, err := reductions.BuildThreeColoring(graphs.Cycle(6))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Decide(red.DB, red.MQ, core.Sup, rat.New(1, 2), core.Type0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5 row 3 (Theorems 3.28/3.29): NP^PP, confidence --------------

// BenchmarkFig5Row3Confidence runs the ∃C-3SAT reduction (the counting-
// heavy confidence case) for both construction variants.
func BenchmarkFig5Row3Confidence(b *testing.B) {
	rng := mrand.New(mrand.NewSource(9))
	f := logic.Random3CNF(rng, 4, 3)
	inst := &logic.ExistsCountInstance{F: f, Pi: []int{0, 1}, Chi: []int{2, 3}, K: 2}
	for _, v := range []struct {
		name    string
		variant reductions.ExistsCSATVariant
		typ     core.InstType
	}{
		{"type0", reductions.VariantType0, core.Type0},
		{"type1", reductions.VariantType12, core.Type1},
		{"type2", reductions.VariantType12, core.Type2},
	} {
		red, err := reductions.BuildExistsCSAT(inst, v.variant)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Decide(red.DB, red.MQ, core.Cnf, red.K, v.typ); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 5 row 4 (Theorem 3.32): LOGCFL, acyclic type-0 k=0 -----------

// BenchmarkFig5Row4Acyclic evaluates the acyclic metaquery through the
// Theorem 3.32 reduction (semijoin programs, no join materialization); the
// polynomial growth with |DB| is the tractability shape.
func BenchmarkFig5Row4Acyclic(b *testing.B) {
	mq := core.MustParse("P(X,Y) <- P(Y,Z), Q(Z,W)")
	for _, n := range []int{100, 200, 400, 800} {
		db := workload.Random{Relations: 3, Arity: 2, Tuples: n, Domain: n / 2, Seed: int64(n)}.Build()
		red, err := reductions.BuildAcyclicCQ(db, mq, core.Cnf)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("tuples=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := red.Decide(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 5 row 5 (Theorem 3.33): acyclic, types 1-2: NP-complete ------

// BenchmarkFig5Row5HamPath runs the Hamiltonian-path reduction; the
// factorial candidate space of the permuting pattern N drives the growth.
func BenchmarkFig5Row5HamPath(b *testing.B) {
	for _, n := range []int{4, 5, 6} {
		g := graphs.Cycle(n)
		red, err := reductions.BuildHamPath(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Decide(red.DB, red.MQ, core.Sup, rat.Zero, core.Type1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 5 row 7 (Theorem 3.34) ---------------------------------------

// BenchmarkFig5Row7AcyclicThreshold decides the cover-threshold problem on
// the acyclic HAMPATH metaquery.
func BenchmarkFig5Row7AcyclicThreshold(b *testing.B) {
	red, err := reductions.BuildHamPath(graphs.Cycle(5))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Decide(red.DB, red.MQ, core.Cvr, rat.New(1, 2), core.Type1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5 row 9 (Theorem 3.35): semi-acyclic type-0 ------------------

// BenchmarkFig5Row9SemiAcyclic runs the semi-acyclic 3-COLORING reduction;
// the per-node predicate variables make the instantiation space 3^|V|.
func BenchmarkFig5Row9SemiAcyclic(b *testing.B) {
	for _, n := range []int{3, 4, 5} {
		red, err := reductions.BuildSemiAcyclicThreeCol(graphs.Cycle(n))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Decide(red.DB, red.MQ, core.Sup, rat.Zero, core.Type0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 5 rows 10-11 (Theorems 3.37/3.38): data complexity -----------

// BenchmarkFig5Row10AC0 builds and evaluates the Theorem 3.37 AC0 circuit
// family across domain sizes: depth stays constant, size grows
// polynomially, evaluation stays fast.
func BenchmarkFig5Row10AC0(b *testing.B) {
	schema := circuit.Schema{{Name: "p", Arity: 2}, {Name: "q", Arity: 2}}
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	for _, d := range []int{2, 3, 4, 5} {
		circ, err := circuit.BuildExistsMQ(schema, d, mq, core.Cnf, core.Type0)
		if err != nil {
			b.Fatal(err)
		}
		db := schemaDB(d, d*d/2)
		asn, err := circuit.Assignment(db, d)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("domain=%d/gates=%d/depth=%d", d, circ.Size(), circ.Depth()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				circ.Eval(asn)
			}
		})
	}
}

// BenchmarkFig5Row11TC0 does the same for the counting circuits of
// Theorem 3.38 at threshold 1/2.
func BenchmarkFig5Row11TC0(b *testing.B) {
	schema := circuit.Schema{{Name: "p", Arity: 2}, {Name: "q", Arity: 2}}
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	for _, d := range []int{2, 3, 4} {
		circ, err := circuit.BuildThresholdMQ(schema, d, mq, core.Cnf, rat.New(1, 2), core.Type0)
		if err != nil {
			b.Fatal(err)
		}
		db := schemaDB(d, d*d/2)
		asn, err := circuit.Assignment(db, d)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("domain=%d/gates=%d/depth=%d", d, circ.Size(), circ.Depth()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				circ.Eval(asn)
			}
		})
	}
}

// schemaDB builds a {p,q} database over constants 0..d-1.
func schemaDB(d, tuples int) *Database {
	db := NewDatabase()
	for i := 0; i < d; i++ {
		db.Dict().Intern(fmt.Sprint(i))
	}
	rng := mrand.New(mrand.NewSource(17))
	for _, name := range []string{"p", "q"} {
		db.MustAddRelation(name, 2)
		for i := 0; i < tuples; i++ {
			db.MustInsertNamed(name, fmt.Sprint(rng.Intn(d)), fmt.Sprint(rng.Intn(d)))
		}
	}
	return db
}

// --- Theorem 4.12: support in d^c log d ----------------------------------

// BenchmarkThm412WidthScaling measures the hypertree-guided support
// computation across database sizes for body widths 1 and 2: doubling d
// should roughly double width-1 cost and quadruple width-2 cost.
func BenchmarkThm412WidthScaling(b *testing.B) {
	for c := 1; c <= 2; c++ {
		for _, d := range []int{250, 500, 1000} {
			db, rule := workload.WidthWorkload(c, d, d/8+4, int64(c*7+d))
			b.Run(fmt.Sprintf("width=%d/d=%d", c, d), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := engine.SupportOfRule(db, rule); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 4: findRules vs naive, and ablations -------------------------

// BenchmarkFindRulesVsNaive compares the Figure 4 engine against the naive
// enumerator on a selective chain workload.
func BenchmarkFindRulesVsNaive(b *testing.B) {
	db := workload.ChainDB(3, 25, 100, 5)
	mq := workload.ChainMQ(3)
	th := core.AllAbove(rat.New(1, 10), rat.Zero, rat.Zero)
	b.Run("findRules", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.FindRules(db, mq, engine.Options{Type: core.Type0, Thresholds: th}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NaiveAnswers(db, mq, core.Type0, th); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation quantifies each design choice of the Figure 4
// algorithm by disabling it: support pruning, the semijoin full reducer,
// and the minimal-width decomposition.
func BenchmarkAblation(b *testing.B) {
	db := workload.ChainDB(3, 25, 120, 6)
	mq := workload.ChainMQ(3)
	th := core.AllAbove(rat.New(1, 4), rat.New(1, 4), rat.Zero)
	variants := []struct {
		name string
		opt  engine.Options
	}{
		{"full", engine.Options{Type: core.Type0, Thresholds: th}},
		{"no-support-pruning", engine.Options{Type: core.Type0, Thresholds: th, DisableSupportPruning: true}},
		{"no-full-reducer", engine.Options{Type: core.Type0, Thresholds: th, DisableFullReducer: true}},
		{"flat-decomposition", engine.Options{Type: core.Type0, Thresholds: th, FlatDecomposition: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.FindRules(db, mq, v.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §4 closing analysis: instantiation-space growth ---------------------

// BenchmarkInstantiationSpace enumerates the full instantiation space per
// type, the n^(m-1) vs (n·b^a)^(m-1) analysis at the end of Section 4.
func BenchmarkInstantiationSpace(b *testing.B) {
	db := workload.Random{Relations: 4, Arity: 2, Tuples: 2, Domain: 3, Seed: 2}.Build()
	mq := workload.MQ4()
	for _, typ := range []core.InstType{core.Type0, core.Type1, core.Type2} {
		b.Run(typ.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CountInstantiations(db, mq, typ); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPreparedReuse measures what the Engine/Prepared session API
// amortizes: N executions of one Prepared metaquery (database indices,
// query analysis and node joins computed once, then shared) against N cold
// FindRules calls that redo the preprocessing every time.
func BenchmarkPreparedReuse(b *testing.B) {
	db := workload.ChainDB(3, 25, 100, 5)
	mq := workload.ChainMQ(3)
	opt := engine.Options{Type: core.Type0, Thresholds: core.AllAbove(rat.New(1, 10), rat.Zero, rat.Zero)}
	ctx := context.Background()
	b.Run("prepared", func(b *testing.B) {
		prep, err := engine.NewEngine(db).Prepare(mq, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := prep.FindRules(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.FindRules(db, mq, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamFirstAnswer measures the early-exit benefit of streaming:
// taking only the first answer versus materializing the full answer set.
func BenchmarkStreamFirstAnswer(b *testing.B) {
	db := workload.ChainDB(3, 25, 100, 5)
	mq := workload.ChainMQ(3)
	opt := engine.Options{Type: core.Type0}
	ctx := context.Background()
	prep, err := engine.NewEngine(db).Prepare(mq, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("first-streamed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, err := range prep.Stream(ctx) {
				if err != nil {
					b.Fatal(err)
				}
				break
			}
		}
	})
	b.Run("full-set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prep.FindRules(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelStream drains the full merged answer stream of one
// warm Prepared at increasing worker counts: the sequential path at
// workers=1 against the sharded enumeration (first-node candidates
// partitioned across a goroutine pool feeding one channel). On a
// multi-core box the wall time steps down with workers; the allocs
// column tracks the pooled steady state either way.
func BenchmarkParallelStream(b *testing.B) {
	db := workload.ChainDB(3, 25, 100, 5)
	mq := workload.ChainMQ(3)
	th := core.AllAbove(rat.New(1, 10), rat.Zero, rat.Zero)
	ctx := context.Background()
	eng := engine.NewEngine(db)
	for _, workers := range []int{1, 2, 4, 8} {
		prep, err := eng.Prepare(mq, engine.Options{Type: core.Type0, Thresholds: th, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		// Warm pass fills the node-join cache the workers share.
		for _, err := range prep.Stream(ctx) {
			if err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, err := range prep.Stream(ctx) {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkDecideFirst measures the dedicated first-witness decision path
// against the deprecated FindRules-with-Limit-1 idiom, with YES and NO
// verdicts benchmarked separately (the ROADMAP "decider asymmetry": a NO
// answered through enumeration pays the full materialize-then-filter
// cost). k = 0 is a YES on this workload for every index; k = 1 is a
// certain NO under the strict comparison, forcing both paths to exhaust
// the body space.
func BenchmarkDecideFirst(b *testing.B) {
	db := workload.Random{Relations: 5, Arity: 2, Tuples: 40, Domain: 12, Seed: 6}.Build()
	mq := workload.MQ4()
	ctx := context.Background()
	eng := engine.NewEngine(db)
	for _, c := range []struct {
		name string
		ix   core.Index
		k    rat.Rat
	}{
		{"yes/sup", core.Sup, rat.Zero},
		{"yes/cnf", core.Cnf, rat.Zero},
		{"no/sup", core.Sup, rat.New(1, 1)},
		{"no/cnf", core.Cnf, rat.New(1, 1)},
		{"no/cvr", core.Cvr, rat.New(1, 1)},
	} {
		prep, err := eng.Prepare(mq, engine.Options{Type: core.Type0})
		if err != nil {
			b.Fatal(err)
		}
		limPrep, err := eng.Prepare(mq, engine.Options{Type: core.Type0, Thresholds: core.SingleIndex(c.ix, c.k), Limit: 1})
		if err != nil {
			b.Fatal(err)
		}
		// Warm both paths once so neither benchmark pays the shared
		// engine-level cache fills (atom tables, join plans) for the other.
		if _, _, err := prep.DecideFirst(ctx, c.ix, c.k); err != nil {
			b.Fatal(err)
		}
		if _, err := limPrep.FindRules(ctx); err != nil {
			b.Fatal(err)
		}
		b.Run(c.name+"/decide-first", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := prep.DecideFirst(ctx, c.ix, c.k); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/limit-1", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := limPrep.FindRules(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Beyond-paper extensions ----------------------------------------------

// BenchmarkParallelDecide measures the coarse-grained parallel decision
// procedure (the "highly parallelizable" remark of Section 5) on a NO
// instance, which forces exploration of the full instantiation space.
func BenchmarkParallelDecide(b *testing.B) {
	db := workload.Random{Relations: 6, Arity: 2, Tuples: 30, Domain: 10, Seed: 4}.Build()
	mq := workload.MQ4()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.DecideParallel(db, mq, core.Cnf, rat.New(99, 100), core.Type0, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNegationExtension measures the §5 future-work extension
// (negated body literals) against the positive-only baseline.
func BenchmarkNegationExtension(b *testing.B) {
	db := workload.Random{Relations: 3, Arity: 2, Tuples: 40, Domain: 10, Seed: 8}.Build()
	th := core.AllAbove(rat.Zero, rat.Zero, rat.Zero)
	positive := ext.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	negated := ext.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z), not S(X,Z)")
	b.Run("positive-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ext.Answers(db, positive, core.Type0, th); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("with-negation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ext.Answers(db, negated, core.Type0, th); err != nil {
				b.Fatal(err)
			}
		}
	})
}
